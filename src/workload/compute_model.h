// FLOPs-based compute-time model.
//
// Substitutes for the Perlmutter A100 measurements in §3.1 of the paper: it
// produces per-layer forward/backward durations from model FLOPs, the GPU's
// peak throughput, and an achieved-utilization factor (MFU). Defaults are
// calibrated so the Llama3-8B / TP=4 / FSDP=2 / PP=2 workload exhibits the
// paper's window structure (millisecond windows; ~O(100ms..1s) window before
// the ReduceScatter phase).
#pragma once

#include "common/units.h"
#include "workload/model_config.h"
#include "workload/parallelism.h"

namespace opus::workload {

struct GpuSpec {
  std::string name = "A100-SXM4-40GB";
  double peak_flops = 312e12;       ///< bf16 dense
  double hbm_bytes_per_sec = 1.6e12;
  static GpuSpec a100() { return {}; }
  static GpuSpec h100() { return {"H100-SXM5", 989e12, 3.35e12}; }
  static GpuSpec h200() { return {"H200-SXM5", 989e12, 4.8e12}; }

  /// Field-wise equality (config/serde skips fields equal to the default).
  friend bool operator==(const GpuSpec&, const GpuSpec&) = default;
};

class ComputeModel {
 public:
  explicit ComputeModel(GpuSpec gpu = GpuSpec::a100(), double mfu = 0.35,
                        bool activation_recompute = true)
      : gpu_(gpu), mfu_(mfu), activation_recompute_(activation_recompute) {}

  double effective_flops() const { return gpu_.peak_flops * mfu_; }
  bool activation_recompute() const { return activation_recompute_; }

  /// Forward time of one layer for one microbatch (per GPU, TP-sharded).
  TimeNs layer_fwd(const ModelConfig& m, const ParallelismConfig& p) const;
  /// Backward time (2x forward, 3x with full activation recomputation).
  TimeNs layer_bwd(const ModelConfig& m, const ParallelismConfig& p) const;

  /// Folded cost of the layer's TP collectives over the scale-up fabric
  /// (2 ring AllReduce per layer per pass). Added to layer durations when
  /// the engine runs with tp_comm folded instead of simulated.
  TimeNs layer_tp_comm(const ModelConfig& m, const ParallelismConfig& p,
                       Bandwidth nvlink_bw) const;

  /// Optimizer step: HBM-bandwidth-bound update of the GPU's param shard
  /// (params + grads + two Adam moments).
  TimeNs optimizer_step(const ModelConfig& m,
                        const ParallelismConfig& p) const;

 private:
  GpuSpec gpu_;
  double mfu_;
  bool activation_recompute_;
};

}  // namespace opus::workload
