// Communication-volume formulas per parallelism axis (Table 2 of the paper).
//
// Conventions (matching the payload semantics in collective/planner.h and
// the per-call sizes TorchTitan's profiler reports, which Fig. 4(b) uses):
//  - AllGather volume   = total gathered bytes (what the group materializes)
//  - ReduceScatter      = per-rank input bytes (full gradient shard, fp32)
//  - AllReduce          = per-rank buffer bytes
//  - Send/Recv          = message bytes
//  - AllToAll           = per-rank send total
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "workload/model_config.h"
#include "workload/parallelism.h"

namespace opus::workload {

/// Per-call communication volumes for a given model + parallelism.
class CommVolumeModel {
 public:
  CommVolumeModel(const ModelConfig& model, const ParallelismConfig& par);

  /// Tokens processed per microbatch (per pipeline replica).
  std::int64_t tokens_per_microbatch() const;

  /// FSDP per-layer forward/backward AllGather: gathers the layer's
  /// TP-sharded bf16 parameters across the DP group.
  Bytes fsdp_allgather_per_layer() const;
  /// FSDP per-layer backward ReduceScatter: per-rank fp32 gradient input.
  Bytes fsdp_reducescatter_per_layer() const;
  /// Plain DP: per-bucket gradient AllReduce (bf16), whole model shard.
  Bytes dp_allreduce_per_layer() const;

  /// TP per-operator AllReduce of activations (no sequence parallelism).
  Bytes tp_allreduce_per_op() const;
  /// TP+SP per-operator AllGather / ReduceScatter of activations.
  Bytes tp_sp_allgather_per_op() const;

  /// PP per-microbatch activation Send/Recv at a stage boundary.
  Bytes pp_sendrecv_per_microbatch() const;

  /// CP per-layer KV AllGather (ring attention approximated as AG).
  Bytes cp_allgather_per_layer() const;

  /// EP per-layer AllToAll: tokens routed to experts (top-k copies).
  Bytes ep_alltoall_per_layer() const;

  /// Optimizer-synchronization AllReduce (grad-norm / loss scalars).
  Bytes sync_allreduce() const { return 4 * 1024; }

  /// One embedding matrix (input embedding or output head): vocab x hidden
  /// parameters, TP-sharded, in parameter precision (for AllGather).
  Bytes embedding_half_ag() const;
  /// Same matrix in gradient precision (for ReduceScatter).
  Bytes embedding_half_rs() const;

  /// Extra FSDP AllGather bytes hosted by `stage`: the input embedding on
  /// stage 0, the output head on the last stage (both when pp == 1).
  Bytes embedding_ag_extra(int stage) const;
  /// Same for the backward ReduceScatter (fp32 gradients).
  Bytes embedding_rs_extra(int stage) const;

  /// Layers hosted by one pipeline stage.
  int layers_per_stage() const;

  const ModelConfig& model() const { return model_; }
  const ParallelismConfig& parallelism() const { return par_; }

 private:
  ModelConfig model_;
  ParallelismConfig par_;
};

/// One row of Table 2: the qualitative characteristics of a parallelism.
struct ParallelismTraits {
  std::string name;
  std::string memory_reduction;
  std::string compute_reduction;
  std::string communication;  ///< type and frequency
};

/// All rows of Table 2.
std::vector<ParallelismTraits> parallelism_traits_table();

}  // namespace opus::workload
