#include "workload/parallelism.h"

#include <sstream>

#include "common/error.h"

namespace opus::workload {

void ParallelismConfig::validate() const {
  ensure(tp >= 1 && cp >= 1 && dp >= 1 && pp >= 1 && ep >= 1,
         "parallel degrees must be >= 1");
  ensure(n_microbatches >= 1, "need at least one microbatch");
  ensure(microbatch_size >= 1, "microbatch size must be >= 1");
  ensure(dp % ep == 0, "expert parallel degree must divide data parallel");
  ensure(n_microbatches >= pp,
         "1F1B requires at least as many microbatches as pipeline stages");
}

std::string ParallelismConfig::to_string() const {
  std::ostringstream os;
  os << "TP=" << tp;
  if (cp > 1) os << " CP=" << cp;
  os << (fsdp ? " FSDP=" : " DP=") << dp << " PP=" << pp;
  if (ep > 1) os << " EP=" << ep;
  os << " mb=" << n_microbatches << "x" << microbatch_size;
  return os.str();
}

RankMapper::RankMapper(ParallelismConfig cfg, int gpus_per_node)
    : cfg_(cfg), gpus_per_node_(gpus_per_node) {
  cfg_.validate();
  ensure(gpus_per_node >= 1, "need at least one GPU per node");
  ensure(cfg_.world_size() % gpus_per_node == 0,
         "world size must be a whole number of nodes");
  ensure((cfg_.tp * cfg_.cp) % gpus_per_node == 0 ||
             gpus_per_node % (cfg_.tp * cfg_.cp) == 0,
         "TP*CP must pack into scale-up domains");
  build_groups();
}

RankCoords RankMapper::coords(GpuId g) const {
  ensure(g.valid() && g.value() < world_size(), "invalid rank");
  int v = g.value();
  RankCoords c;
  c.tp = v % cfg_.tp;
  v /= cfg_.tp;
  c.cp = v % cfg_.cp;
  v /= cfg_.cp;
  c.dp = v % cfg_.dp;
  v /= cfg_.dp;
  c.pp = v;
  return c;
}

GpuId RankMapper::gpu(const RankCoords& c) const {
  ensure(c.tp >= 0 && c.tp < cfg_.tp && c.cp >= 0 && c.cp < cfg_.cp &&
             c.dp >= 0 && c.dp < cfg_.dp && c.pp >= 0 && c.pp < cfg_.pp,
         "coords out of range");
  return GpuId{c.tp + cfg_.tp * (c.cp + cfg_.cp * (c.dp + cfg_.dp * c.pp))};
}

void RankMapper::build_groups() {
  using collective::CommGroup;
  using collective::ParallelismDim;
  std::int32_t next_id = 0;
  auto make_group = [&next_id](ParallelismDim dim, std::string name) {
    CommGroup g;
    g.id = GroupId{next_id++};
    g.dim = dim;
    g.name = std::move(name);
    return g;
  };

  // TP groups: vary tp, fix (cp, dp, pp).
  for (int p = 0; p < cfg_.pp; ++p)
    for (int d = 0; d < cfg_.dp; ++d)
      for (int c = 0; c < cfg_.cp; ++c) {
        auto g = make_group(ParallelismDim::kTP,
                            "tp[cp" + std::to_string(c) + ",dp" +
                                std::to_string(d) + ",pp" + std::to_string(p) +
                                "]");
        for (int t = 0; t < cfg_.tp; ++t) g.ranks.push_back(gpu({t, c, d, p}));
        tp_.push_back(std::move(g));
      }

  // CP groups: vary cp.
  if (cfg_.cp > 1) {
    for (int p = 0; p < cfg_.pp; ++p)
      for (int d = 0; d < cfg_.dp; ++d)
        for (int t = 0; t < cfg_.tp; ++t) {
          auto g = make_group(ParallelismDim::kCP,
                              "cp[tp" + std::to_string(t) + ",dp" +
                                  std::to_string(d) + ",pp" +
                                  std::to_string(p) + "]");
          for (int c = 0; c < cfg_.cp; ++c)
            g.ranks.push_back(gpu({t, c, d, p}));
          cp_.push_back(std::move(g));
        }
  }

  // DP groups: vary dp.
  for (int p = 0; p < cfg_.pp; ++p)
    for (int c = 0; c < cfg_.cp; ++c)
      for (int t = 0; t < cfg_.tp; ++t) {
        auto g = make_group(ParallelismDim::kDP,
                            "dp[tp" + std::to_string(t) + ",cp" +
                                std::to_string(c) + ",pp" + std::to_string(p) +
                                "]");
        for (int d = 0; d < cfg_.dp; ++d) g.ranks.push_back(gpu({t, c, d, p}));
        dp_.push_back(std::move(g));
      }

  // PP groups: vary pp (ring order = stage order).
  for (int d = 0; d < cfg_.dp; ++d)
    for (int c = 0; c < cfg_.cp; ++c)
      for (int t = 0; t < cfg_.tp; ++t) {
        auto g = make_group(ParallelismDim::kPP,
                            "pp[tp" + std::to_string(t) + ",cp" +
                                std::to_string(c) + ",dp" + std::to_string(d) +
                                "]");
        for (int p = 0; p < cfg_.pp; ++p) g.ranks.push_back(gpu({t, c, d, p}));
        pp_.push_back(std::move(g));
      }

  // EP groups: first `ep` ranks of each DP group slice (EP nests inside DP).
  if (cfg_.ep > 1) {
    for (int p = 0; p < cfg_.pp; ++p)
      for (int c = 0; c < cfg_.cp; ++c)
        for (int t = 0; t < cfg_.tp; ++t)
          for (int d0 = 0; d0 < cfg_.dp; d0 += cfg_.ep) {
            auto g = make_group(ParallelismDim::kEP,
                                "ep[tp" + std::to_string(t) + ",cp" +
                                    std::to_string(c) + ",dp" +
                                    std::to_string(d0) + "..,pp" +
                                    std::to_string(p) + "]");
            for (int e = 0; e < cfg_.ep; ++e)
              g.ranks.push_back(gpu({t, c, d0 + e, p}));
            ep_.push_back(std::move(g));
          }
  }
}

const collective::CommGroup& RankMapper::group_of(
    collective::ParallelismDim dim, GpuId g) const {
  const std::vector<collective::CommGroup>* groups = nullptr;
  switch (dim) {
    case collective::ParallelismDim::kTP: groups = &tp_; break;
    case collective::ParallelismDim::kCP: groups = &cp_; break;
    case collective::ParallelismDim::kDP: groups = &dp_; break;
    case collective::ParallelismDim::kPP: groups = &pp_; break;
    case collective::ParallelismDim::kEP: groups = &ep_; break;
    case collective::ParallelismDim::kOther:
      ensure(false, "group_of: no groups for dim Other");
  }
  for (const auto& grp : *groups) {
    if (grp.contains(g)) return grp;
  }
  ensure(false, "group_of: rank not found in any group of the dimension");
  return tp_.front();  // unreachable
}

bool RankMapper::rail_local(const collective::CommGroup& group) const {
  if (group.ranks.empty()) return true;
  const int local = group.ranks.front().value() % gpus_per_node_;
  for (GpuId g : group.ranks) {
    if (g.value() % gpus_per_node_ != local) return false;
  }
  return true;
}

ParallelismAdvice advise_parallelism(std::int64_t params, int n_gpus) {
  const bool small = params < 10'000'000'000LL;
  if (small) {
    return {"Small (<10B)", "N <= 8", "TP or DP"};
  }
  if (n_gpus <= 512) {
    return {"Large (>10B)", "8 < N <= 512", "TP & PP, TP & DP, or DP"};
  }
  if (n_gpus <= 1024) {
    return {"Large (>10B)", "512 < N <= 1024", "DP & PP, or DP & TP"};
  }
  return {"Large (>10B)", "N > 1024", "TP, DP & PP"};
}

std::vector<ParallelismAdvice> parallelism_rule_table() {
  return {
      advise_parallelism(8'000'000'000LL, 8),
      advise_parallelism(70'000'000'000LL, 512),
      advise_parallelism(70'000'000'000LL, 1024),
      advise_parallelism(405'000'000'000LL, 8192),
  };
}

}  // namespace opus::workload
