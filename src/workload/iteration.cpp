#include "workload/iteration.h"

#include <algorithm>
#include <map>
#include <queue>
#include <sstream>

#include "common/error.h"

namespace opus::workload {

int layers_of_stage(int n_layers, int pp, int stage) {
  ensure(pp >= 1 && stage >= 0 && stage < pp, "invalid pipeline stage");
  const int base = n_layers / pp;
  const int rem = n_layers % pp;
  return base + (stage < rem ? 1 : 0);
}

int IterationDag::collective_op_count() const {
  int n = 0;
  for (const Op& op : ops)
    if (op.kind == OpKind::kCollective) ++n;
  return n;
}

Bytes IterationDag::total_collective_payload() const {
  Bytes total = 0;
  for (const Op& op : ops) {
    if (op.kind == OpKind::kCollective) {
      total += op.payload * static_cast<Bytes>(op.group_indices.size());
    }
  }
  return total;
}

void IterationDag::validate() const {
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    ensure(op.id.value() == static_cast<std::int32_t>(i),
           "DAG op ids must be dense and ordered");
    for (OpId d : op.deps) {
      ensure(d.valid() && static_cast<std::size_t>(d.value()) < ops.size(),
             "DAG dep references unknown op");
      ensure(d.value() != op.id.value(), "DAG op depends on itself");
    }
    if (op.kind == OpKind::kCompute) {
      ensure(!op.gpus.empty(), "compute op without GPUs");
      ensure(op.duration >= 0, "compute op with negative duration");
    }
    if (op.kind == OpKind::kCollective) {
      ensure(!op.group_indices.empty(), "collective op without groups");
      for (int gi : op.group_indices) {
        ensure(gi >= 0 && static_cast<std::size_t>(gi) < groups.size(),
               "collective op references unknown group");
      }
    }
  }
  // Acyclicity via Kahn's algorithm.
  std::vector<int> indegree(ops.size(), 0);
  std::vector<std::vector<int>> out(ops.size());
  for (const Op& op : ops) {
    indegree[static_cast<std::size_t>(op.id.value())] =
        static_cast<int>(op.deps.size());
    for (OpId d : op.deps) {
      out[static_cast<std::size_t>(d.value())].push_back(op.id.value());
    }
  }
  std::queue<int> q;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (indegree[i] == 0) q.push(static_cast<int>(i));
  }
  std::size_t visited = 0;
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    ++visited;
    for (int w : out[static_cast<std::size_t>(v)]) {
      if (--indegree[static_cast<std::size_t>(w)] == 0) q.push(w);
    }
  }
  ensure(visited == ops.size(), "DAG contains a dependency cycle");
}

namespace {

using collective::CollectiveType;
using collective::CommGroup;
using collective::ParallelismDim;

class DagBuilder {
 public:
  DagBuilder(const ModelConfig& model, const ParallelismConfig& par,
             const RankMapper& mapper, const ComputeModel& compute,
             const IterationOptions& opt)
      : model_(model),
        par_(par),
        mapper_(mapper),
        compute_(compute),
        opt_(opt),
        vol_(model, par) {}

  IterationDag build();

 private:
  // ---- helpers -------------------------------------------------------------
  OpId new_op(OpKind kind, std::string label) {
    Op op;
    op.id = OpId{static_cast<std::int32_t>(dag_.ops.size())};
    op.kind = kind;
    op.label = std::move(label);
    dag_.ops.push_back(std::move(op));
    return dag_.ops.back().id;
  }
  Op& op(OpId id) { return dag_.ops[static_cast<std::size_t>(id.value())]; }
  void dep(OpId of, OpId on) { op(of).deps.push_back(on); }

  /// Copies a mapper group into the DAG (fresh dense id), memoized.
  int reg_group(const CommGroup& g) {
    auto it = group_index_.find(g.id);
    if (it != group_index_.end()) return it->second;
    CommGroup copy = g;
    copy.id = GroupId{static_cast<std::int32_t>(dag_.groups.size())};
    dag_.groups.push_back(std::move(copy));
    const int idx = static_cast<int>(dag_.groups.size() - 1);
    group_index_.emplace(g.id, idx);
    return idx;
  }
  /// Registers an ad-hoc pipeline pair group sending from -> to. The two
  /// orientations of one physical pair share a GroupId: they use the same
  /// circuits, and the control plane and window analysis treat them as one
  /// communication group.
  int reg_pair_group(GpuId from, GpuId to, const std::string& name) {
    const auto key = std::make_pair(from, to);
    auto it = pair_index_.find(key);
    if (it != pair_index_.end()) return it->second;
    GroupId shared_id;
    const auto reverse = pair_index_.find(std::make_pair(to, from));
    if (reverse != pair_index_.end()) {
      shared_id = dag_.groups[static_cast<std::size_t>(reverse->second)].id;
    } else {
      shared_id = GroupId{static_cast<std::int32_t>(dag_.groups.size())};
    }
    CommGroup g;
    g.id = shared_id;
    g.dim = ParallelismDim::kPP;
    g.ranks = {from, to};
    g.name = name;
    dag_.groups.push_back(std::move(g));
    const int idx = static_cast<int>(dag_.groups.size() - 1);
    pair_index_.emplace(key, idx);
    return idx;
  }

  std::vector<GpuId> replica_gpus(int d, int s) const {
    std::vector<GpuId> gpus;
    for (int c = 0; c < par_.cp; ++c)
      for (int t = 0; t < par_.tp; ++t)
        gpus.push_back(mapper_.gpu({t, c, d, s}));
    return gpus;
  }

  // ---- construction phases --------------------------------------------------
  void create_fsdp_allgathers();
  void create_compute_and_pp();
  void create_backward_regather();
  void create_gradient_reduction();
  void create_sync_and_optimizer();

  // ---- indices ---------------------------------------------------------------
  std::size_t fwd_idx(int d, int s, int m, int l) const {
    return ((static_cast<std::size_t>(d) * static_cast<std::size_t>(par_.pp) +
             static_cast<std::size_t>(s)) *
                static_cast<std::size_t>(par_.n_microbatches) +
            static_cast<std::size_t>(m)) *
               static_cast<std::size_t>(max_layers_) +
           static_cast<std::size_t>(l);
  }

  const ModelConfig& model_;
  const ParallelismConfig& par_;
  const RankMapper& mapper_;
  const ComputeModel& compute_;
  const IterationOptions& opt_;
  CommVolumeModel vol_;

  IterationDag dag_;
  std::map<GroupId, int> group_index_;
  std::map<std::pair<GpuId, GpuId>, int> pair_index_;

  int max_layers_ = 0;
  std::vector<OpId> fwd_ops_, bwd_ops_;
  // ag_[s][l], agb_[s][l], red_[s][l] (RS or AR), per-stage.
  std::vector<std::vector<OpId>> ag_, agb_, red_;
  // sr_fwd_[d][m][boundary b: b -> b+1], sr_bwd_[d][m][b: b+1 -> b]
  std::vector<std::vector<std::vector<OpId>>> sr_fwd_, sr_bwd_;
  OpId schedule_end_;
  bool dp_active_ = false;
};

void DagBuilder::create_fsdp_allgathers() {
  if (!dp_active_ || !par_.fsdp) return;
  ag_.assign(static_cast<std::size_t>(par_.pp), {});
  for (int s = 0; s < par_.pp; ++s) {
    const int ls = layers_of_stage(model_.n_layers, par_.pp, s);
    ag_[static_cast<std::size_t>(s)].resize(static_cast<std::size_t>(ls));
    for (int l = 0; l < ls; ++l) {
      std::ostringstream label;
      label << "AG[s" << s << ",l" << l << "]";
      const OpId id = new_op(OpKind::kCollective, label.str());
      Op& o = op(id);
      o.ctype = CollectiveType::kAllGather;
      o.dim = ParallelismDim::kDP;
      o.payload = vol_.fsdp_allgather_per_layer();
      // The input embedding lives with stage 0's first layer, the output
      // head with the last stage's last layer.
      if (s == 0 && l == 0) o.payload += vol_.embedding_half_ag();
      if (s == par_.pp - 1 && l == ls - 1) o.payload += vol_.embedding_half_ag();
      o.pp_stage = s;
      o.layer = l;
      for (int c = 0; c < par_.cp; ++c)
        for (int t = 0; t < par_.tp; ++t) {
          const GpuId g = mapper_.gpu({t, c, 0, s});
          o.group_indices.push_back(
              reg_group(mapper_.group_of(ParallelismDim::kDP, g)));
        }
      if (l > 0) dep(id, ag_[static_cast<std::size_t>(s)][static_cast<std::size_t>(l - 1)]);
      ag_[static_cast<std::size_t>(s)][static_cast<std::size_t>(l)] = id;
    }
  }
}

void DagBuilder::create_compute_and_pp() {
  const int M = par_.n_microbatches;
  const int pp = par_.pp;
  const int dp = par_.dp;
  max_layers_ = layers_of_stage(model_.n_layers, pp, 0);
  fwd_ops_.assign(static_cast<std::size_t>(dp) * pp * M * max_layers_, OpId{});
  bwd_ops_.assign(static_cast<std::size_t>(dp) * pp * M * max_layers_, OpId{});
  sr_fwd_.assign(static_cast<std::size_t>(dp), {});
  sr_bwd_.assign(static_cast<std::size_t>(dp), {});

  const TimeNs tp_folded =
      opt_.simulate_tp_comm ? 0
                            : compute_.layer_tp_comm(model_, par_, opt_.nvlink_bw);
  const TimeNs fwd_t = compute_.layer_fwd(model_, par_) + tp_folded;
  const TimeNs bwd_t = compute_.layer_bwd(model_, par_) + tp_folded;
  // Output head on the last stage (vocab projection is a large matmul).
  const double head_flops = 2.0 * model_.vocab * model_.hidden *
                            static_cast<double>(vol_.tokens_per_microbatch()) /
                            par_.tp;
  const TimeNs head_t = static_cast<TimeNs>(
      head_flops / compute_.effective_flops() * kNsPerSec);

  // Create every compute op and Send/Recv shell first; wire deps as we go.
  for (int d = 0; d < dp; ++d) {
    sr_fwd_[static_cast<std::size_t>(d)].assign(static_cast<std::size_t>(M), {});
    sr_bwd_[static_cast<std::size_t>(d)].assign(static_cast<std::size_t>(M), {});
    for (int m = 0; m < M; ++m) {
      sr_fwd_[static_cast<std::size_t>(d)][static_cast<std::size_t>(m)].assign(
          static_cast<std::size_t>(std::max(pp - 1, 0)), OpId{});
      sr_bwd_[static_cast<std::size_t>(d)][static_cast<std::size_t>(m)].assign(
          static_cast<std::size_t>(std::max(pp - 1, 0)), OpId{});
    }
  }

  for (int d = 0; d < dp; ++d) {
    for (int s = 0; s < pp; ++s) {
      const int ls = layers_of_stage(model_.n_layers, pp, s);
      const auto gpus = replica_gpus(d, s);
      for (int m = 0; m < M; ++m) {
        for (int l = 0; l < ls; ++l) {
          std::ostringstream fl, bl;
          fl << "F[d" << d << ",s" << s << ",m" << m << ",l" << l << "]";
          bl << "B[d" << d << ",s" << s << ",m" << m << ",l" << l << "]";
          const OpId f = new_op(OpKind::kCompute, fl.str());
          op(f).gpus = gpus;
          op(f).duration = fwd_t + (s == pp - 1 && l == ls - 1 ? head_t : 0);
          op(f).pp_stage = s;
          op(f).microbatch = m;
          op(f).layer = l;
          fwd_ops_[fwd_idx(d, s, m, l)] = f;
          const OpId b = new_op(OpKind::kCompute, bl.str());
          op(b).gpus = gpus;
          op(b).duration = bwd_t + (s == pp - 1 && l == ls - 1 ? 2 * head_t : 0);
          op(b).pp_stage = s;
          op(b).microbatch = m;
          op(b).layer = l;
          bwd_ops_[fwd_idx(d, s, m, l)] = b;
        }
      }
      // Pipeline boundary Send/Recv shells out of this stage.
      if (s < pp - 1) {
        for (int m = 0; m < M; ++m) {
          // Activations forward s -> s+1 (one logical op, per (t,c) pairs).
          std::ostringstream sf;
          sf << "SRf[d" << d << ",m" << m << "," << s << "->" << (s + 1) << "]";
          const OpId f = new_op(OpKind::kCollective, sf.str());
          op(f).ctype = CollectiveType::kSendRecv;
          op(f).dim = ParallelismDim::kPP;
          op(f).payload = vol_.pp_sendrecv_per_microbatch();
          op(f).pp_stage = s;
          op(f).microbatch = m;
          for (int c = 0; c < par_.cp; ++c)
            for (int t = 0; t < par_.tp; ++t) {
              const GpuId a = mapper_.gpu({t, c, d, s});
              const GpuId b = mapper_.gpu({t, c, d, s + 1});
              std::ostringstream gn;
              gn << "pp-pair[t" << t << ",c" << c << ",d" << d << "," << s
                 << "-" << (s + 1) << "]";
              op(f).group_indices.push_back(reg_pair_group(a, b, gn.str()));
            }
          sr_fwd_[static_cast<std::size_t>(d)][static_cast<std::size_t>(m)]
                 [static_cast<std::size_t>(s)] = f;

          // Gradients backward s+1 -> s.
          std::ostringstream sb;
          sb << "SRb[d" << d << ",m" << m << "," << (s + 1) << "->" << s << "]";
          const OpId bop = new_op(OpKind::kCollective, sb.str());
          op(bop).ctype = CollectiveType::kSendRecv;
          op(bop).dim = ParallelismDim::kPP;
          op(bop).payload = vol_.pp_sendrecv_per_microbatch();
          op(bop).pp_stage = s + 1;
          op(bop).microbatch = m;
          for (int c = 0; c < par_.cp; ++c)
            for (int t = 0; t < par_.tp; ++t) {
              const GpuId a = mapper_.gpu({t, c, d, s + 1});
              const GpuId b = mapper_.gpu({t, c, d, s});
              std::ostringstream gn;
              gn << "pp-pair[t" << t << ",c" << c << ",d" << d << ","
                 << (s + 1) << "-" << s << "]";
              op(bop).group_indices.push_back(reg_pair_group(a, b, gn.str()));
            }
          sr_bwd_[static_cast<std::size_t>(d)][static_cast<std::size_t>(m)]
                 [static_cast<std::size_t>(s)] = bop;
        }
      }
    }
  }

  // Wire 1F1B program order + data dependencies.
  for (int d = 0; d < dp; ++d) {
    for (int s = 0; s < pp; ++s) {
      const int ls = layers_of_stage(model_.n_layers, pp, s);
      // Program slots: (is_fwd, microbatch).
      std::vector<std::pair<bool, int>> slots;
      if (opt_.pipeline_schedule == PipelineSchedule::kGpipe) {
        // GPipe: every forward, then every backward.
        for (int m = 0; m < M; ++m) slots.emplace_back(true, m);
        for (int m = 0; m < M; ++m) slots.emplace_back(false, m);
      } else {
        // 1F1B: warm-up forwards, steady alternation, cool-down backwards.
        const int warmup = std::min(pp - 1 - s, M);
        for (int m = 0; m < warmup; ++m) slots.emplace_back(true, m);
        for (int k = 0; k + warmup < M; ++k) {
          slots.emplace_back(true, warmup + k);
          slots.emplace_back(false, k);
        }
        for (int m = M - warmup; m < M; ++m) slots.emplace_back(false, m);
      }

      OpId prev_last{};
      for (const auto& [is_fwd, m] : slots) {
        OpId first, last;
        if (is_fwd) {
          first = fwd_ops_[fwd_idx(d, s, m, 0)];
          last = fwd_ops_[fwd_idx(d, s, m, ls - 1)];
          for (int l = 1; l < ls; ++l) {
            dep(fwd_ops_[fwd_idx(d, s, m, l)],
                fwd_ops_[fwd_idx(d, s, m, l - 1)]);
          }
          if (s > 0) {
            dep(first, sr_fwd_[static_cast<std::size_t>(d)]
                              [static_cast<std::size_t>(m)]
                              [static_cast<std::size_t>(s - 1)]);
          }
          if (dp_active_ && par_.fsdp && m == 0) {
            for (int l = 0; l < ls; ++l) {
              dep(fwd_ops_[fwd_idx(d, s, m, l)],
                  ag_[static_cast<std::size_t>(s)][static_cast<std::size_t>(l)]);
            }
          }
        } else {
          first = bwd_ops_[fwd_idx(d, s, m, ls - 1)];
          last = bwd_ops_[fwd_idx(d, s, m, 0)];
          for (int l = ls - 2; l >= 0; --l) {
            dep(bwd_ops_[fwd_idx(d, s, m, l)],
                bwd_ops_[fwd_idx(d, s, m, l + 1)]);
          }
          if (s < pp - 1) {
            dep(first, sr_bwd_[static_cast<std::size_t>(d)]
                              [static_cast<std::size_t>(m)]
                              [static_cast<std::size_t>(s)]);
          }
        }
        if (prev_last.valid()) dep(first, prev_last);
        prev_last = last;
      }

      // Sends depend on the producing compute.
      if (s < pp - 1) {
        for (int m = 0; m < M; ++m) {
          dep(sr_fwd_[static_cast<std::size_t>(d)][static_cast<std::size_t>(m)]
                     [static_cast<std::size_t>(s)],
              fwd_ops_[fwd_idx(d, s, m, ls - 1)]);
          dep(sr_bwd_[static_cast<std::size_t>(d)][static_cast<std::size_t>(m)]
                     [static_cast<std::size_t>(s)],
              bwd_ops_[fwd_idx(d, s + 1, m, 0)]);
        }
      }
    }
  }

  // The pipeline schedule is complete when every replica/stage finished its
  // last backward (the boundary into the "Sync." region of Fig. 3).
  schedule_end_ = new_op(OpKind::kJoin, "schedule_end");
  for (int d = 0; d < dp; ++d) {
    for (int s = 0; s < pp; ++s) {
      dep(schedule_end_, bwd_ops_[fwd_idx(d, s, M - 1, 0)]);
    }
  }
}

void DagBuilder::create_backward_regather() {
  if (!dp_active_ || !par_.fsdp || !opt_.bwd_regather) return;
  agb_.assign(static_cast<std::size_t>(par_.pp), {});
  for (int s = 0; s < par_.pp; ++s) {
    const int ls = layers_of_stage(model_.n_layers, par_.pp, s);
    agb_[static_cast<std::size_t>(s)].resize(static_cast<std::size_t>(ls));
    for (int l = ls - 1; l >= 0; --l) {
      std::ostringstream label;
      label << "AGb[s" << s << ",l" << l << "]";
      const OpId id = new_op(OpKind::kCollective, label.str());
      Op& o = op(id);
      o.ctype = CollectiveType::kAllGather;
      o.dim = ParallelismDim::kDP;
      o.payload = vol_.fsdp_allgather_per_layer();
      if (s == 0 && l == 0) o.payload += vol_.embedding_half_ag();
      if (s == par_.pp - 1 && l == ls - 1) o.payload += vol_.embedding_half_ag();
      o.pp_stage = s;
      o.layer = l;
      for (int c = 0; c < par_.cp; ++c)
        for (int t = 0; t < par_.tp; ++t) {
          const GpuId g = mapper_.gpu({t, c, 0, s});
          o.group_indices.push_back(
              reg_group(mapper_.group_of(ParallelismDim::kDP, g)));
        }
      if (l == ls - 1) {
        // Re-gather starts when microbatch 0's backward approaches.
        if (s < par_.pp - 1) {
          for (int d = 0; d < par_.dp; ++d) {
            dep(id, sr_bwd_[static_cast<std::size_t>(d)][0]
                           [static_cast<std::size_t>(s)]);
          }
        } else {
          for (int d = 0; d < par_.dp; ++d) {
            dep(id, fwd_ops_[fwd_idx(d, s, 0, ls - 1)]);
          }
        }
      } else {
        dep(id, agb_[static_cast<std::size_t>(s)][static_cast<std::size_t>(l + 1)]);
      }
      agb_[static_cast<std::size_t>(s)][static_cast<std::size_t>(l)] = id;
    }
    // Backward compute of microbatch 0 waits for the re-gathered layer.
    for (int d = 0; d < par_.dp; ++d) {
      for (int l = 0; l < ls; ++l) {
        dep(bwd_ops_[fwd_idx(d, s, 0, l)],
            agb_[static_cast<std::size_t>(s)][static_cast<std::size_t>(l)]);
      }
    }
  }
}

void DagBuilder::create_gradient_reduction() {
  if (!dp_active_) return;
  red_.assign(static_cast<std::size_t>(par_.pp), {});
  for (int s = 0; s < par_.pp; ++s) {
    const int ls = layers_of_stage(model_.n_layers, par_.pp, s);
    red_[static_cast<std::size_t>(s)].resize(static_cast<std::size_t>(ls));
    for (int l = ls - 1; l >= 0; --l) {
      std::ostringstream label;
      label << (par_.fsdp ? "RS[s" : "AR[s") << s << ",l" << l << "]";
      const OpId id = new_op(OpKind::kCollective, label.str());
      Op& o = op(id);
      o.ctype = par_.fsdp ? CollectiveType::kReduceScatter
                          : CollectiveType::kAllReduce;
      o.dim = ParallelismDim::kDP;
      o.payload = par_.fsdp ? vol_.fsdp_reducescatter_per_layer()
                            : vol_.dp_allreduce_per_layer();
      if (s == 0 && l == 0) {
        o.payload += par_.fsdp ? vol_.embedding_half_rs()
                               : vol_.embedding_half_ag();
      }
      if (s == par_.pp - 1 && l == ls - 1) {
        o.payload += par_.fsdp ? vol_.embedding_half_rs()
                               : vol_.embedding_half_ag();
      }
      o.pp_stage = s;
      o.layer = l;
      for (int c = 0; c < par_.cp; ++c)
        for (int t = 0; t < par_.tp; ++t) {
          const GpuId g = mapper_.gpu({t, c, 0, s});
          o.group_indices.push_back(
              reg_group(mapper_.group_of(ParallelismDim::kDP, g)));
        }
      if (l == ls - 1) {
        // Per-stage gradient finalization: the stage's reduce-scatter chain
        // starts once its own last-microbatch backward (and its final
        // gradient send toward the previous stage) completed. Stages finish
        // at different times, so each stage's DP reduction forms its own
        // phase on the rail (the separated ReduceScatter bursts whose
        // preceding window dominates Fig. 4).
        const int M = par_.n_microbatches;
        for (int d = 0; d < par_.dp; ++d) {
          dep(id, bwd_ops_[fwd_idx(d, s, M - 1, 0)]);
          if (s > 0) {
            dep(id, sr_bwd_[static_cast<std::size_t>(d)]
                           [static_cast<std::size_t>(M - 1)]
                           [static_cast<std::size_t>(s - 1)]);
          }
        }
      } else {
        dep(id, red_[static_cast<std::size_t>(s)][static_cast<std::size_t>(l + 1)]);
      }
      red_[static_cast<std::size_t>(s)][static_cast<std::size_t>(l)] = id;
    }
  }
}

void DagBuilder::create_sync_and_optimizer() {
  // Join on gradient reduction (or the schedule itself when dp == 1).
  const OpId grads_done = new_op(OpKind::kJoin, "grads_done");
  if (dp_active_) {
    for (int s = 0; s < par_.pp; ++s) {
      dep(grads_done, red_[static_cast<std::size_t>(s)][0]);
    }
  } else {
    dep(grads_done, schedule_end_);
  }

  // Grad-norm synchronization AllReduces (<1MB, Fig. 4b's smallest class):
  // one along DP, then one along PP.
  OpId last_sync = grads_done;
  if (dp_active_) {
    const OpId sdp = new_op(OpKind::kCollective, "sync-AR[dp]");
    Op& o = op(sdp);
    o.ctype = CollectiveType::kAllReduce;
    o.dim = ParallelismDim::kDP;
    o.payload = vol_.sync_allreduce();
    for (const auto& g : mapper_.dp_groups()) {
      o.group_indices.push_back(reg_group(g));
    }
    dep(sdp, last_sync);
    last_sync = sdp;
  }
  if (par_.pp > 1) {
    const OpId spp = new_op(OpKind::kCollective, "sync-AR[pp]");
    Op& o = op(spp);
    o.ctype = CollectiveType::kAllReduce;
    o.dim = ParallelismDim::kPP;
    o.payload = vol_.sync_allreduce();
    for (const auto& g : mapper_.pp_groups()) {
      o.group_indices.push_back(reg_group(g));
    }
    dep(spp, last_sync);
    last_sync = spp;
  }

  // Optimizer step per stage replica.
  const OpId end = new_op(OpKind::kJoin, "iteration_end");
  for (int d = 0; d < par_.dp; ++d) {
    for (int s = 0; s < par_.pp; ++s) {
      std::ostringstream label;
      label << "optimizer[d" << d << ",s" << s << "]";
      const OpId o = new_op(OpKind::kCompute, label.str());
      op(o).gpus = replica_gpus(d, s);
      op(o).duration = compute_.optimizer_step(model_, par_);
      op(o).pp_stage = s;
      dep(o, last_sync);
      dep(end, o);
    }
  }
}

IterationDag DagBuilder::build() {
  par_.validate();
  ensure(mapper_.config().world_size() == par_.world_size(),
         "mapper and parallelism config disagree");
  dp_active_ = par_.dp > 1;

  create_fsdp_allgathers();
  create_compute_and_pp();

  // Lazy DTensor semantics (§3.1): a non-first stage's first AllGather only
  // starts once the stage receives its first activation from upstream.
  if (dp_active_ && par_.fsdp) {
    for (int s = 1; s < par_.pp; ++s) {
      for (int d = 0; d < par_.dp; ++d) {
        dep(ag_[static_cast<std::size_t>(s)][0],
            sr_fwd_[static_cast<std::size_t>(d)][0]
                   [static_cast<std::size_t>(s - 1)]);
      }
    }
  }

  create_backward_regather();

  // Optional simulated TP AllReduces around each layer.
  if (opt_.simulate_tp_comm && par_.tp > 1) {
    for (int d = 0; d < par_.dp; ++d) {
      for (int s = 0; s < par_.pp; ++s) {
        const int ls = layers_of_stage(model_.n_layers, par_.pp, s);
        for (int m = 0; m < par_.n_microbatches; ++m) {
          for (int l = 0; l < ls; ++l) {
            for (bool fwd : {true, false}) {
              std::ostringstream label;
              label << "TPAR" << (fwd ? "f" : "b") << "[d" << d << ",s" << s
                    << ",m" << m << ",l" << l << "]";
              const OpId id = new_op(OpKind::kCollective, label.str());
              Op& o = op(id);
              o.ctype = CollectiveType::kAllReduce;
              o.dim = ParallelismDim::kTP;
              o.payload = 2 * vol_.tp_allreduce_per_op();  // two ARs merged
              o.pp_stage = s;
              o.microbatch = m;
              o.layer = l;
              for (int c = 0; c < par_.cp; ++c) {
                const GpuId g = mapper_.gpu({0, c, d, s});
                o.group_indices.push_back(
                    reg_group(mapper_.group_of(ParallelismDim::kTP, g)));
              }
              const OpId comp = fwd ? fwd_ops_[fwd_idx(d, s, m, l)]
                                    : bwd_ops_[fwd_idx(d, s, m, l)];
              dep(id, comp);
              // The next layer's compute waits on this AR.
              if (fwd && l + 1 < ls) {
                dep(fwd_ops_[fwd_idx(d, s, m, l + 1)], id);
              }
              if (!fwd && l - 1 >= 0) {
                dep(bwd_ops_[fwd_idx(d, s, m, l - 1)], id);
              }
            }
          }
        }
      }
    }
  }

  // Optional MoE expert-parallel AllToAll per layer per microbatch.
  if (opt_.simulate_ep_comm && par_.ep > 1 && model_.moe()) {
    for (int s = 0; s < par_.pp; ++s) {
      const int ls = layers_of_stage(model_.n_layers, par_.pp, s);
      for (int d0 = 0; d0 < par_.dp; d0 += par_.ep) {
        for (int m = 0; m < par_.n_microbatches; ++m) {
          for (int l = 0; l < ls; ++l) {
            for (bool fwd : {true, false}) {
              std::ostringstream label;
              label << "EPA2A" << (fwd ? "f" : "b") << "[s" << s << ",d" << d0
                    << ",m" << m << ",l" << l << "]";
              const OpId id = new_op(OpKind::kCollective, label.str());
              Op& o = op(id);
              o.ctype = CollectiveType::kAllToAll;
              o.dim = ParallelismDim::kEP;
              o.payload = 2 * vol_.ep_alltoall_per_layer();  // dispatch+combine
              o.pp_stage = s;
              o.microbatch = m;
              o.layer = l;
              for (int c = 0; c < par_.cp; ++c)
                for (int t = 0; t < par_.tp; ++t) {
                  const GpuId g = mapper_.gpu({t, c, d0, s});
                  o.group_indices.push_back(
                      reg_group(mapper_.group_of(ParallelismDim::kEP, g)));
                }
              for (int e = 0; e < par_.ep; ++e) {
                const int d = d0 + e;
                const OpId comp = fwd ? fwd_ops_[fwd_idx(d, s, m, l)]
                                      : bwd_ops_[fwd_idx(d, s, m, l)];
                dep(id, comp);
                if (fwd && l + 1 < ls) {
                  dep(fwd_ops_[fwd_idx(d, s, m, l + 1)], id);
                }
                if (!fwd && l - 1 >= 0) {
                  dep(bwd_ops_[fwd_idx(d, s, m, l - 1)], id);
                }
              }
            }
          }
        }
      }
    }
  }

  create_gradient_reduction();
  create_sync_and_optimizer();

  dag_.validate();
  return std::move(dag_);
}

}  // namespace

IterationDag build_training_iteration(const ModelConfig& model,
                                      const ParallelismConfig& par,
                                      const RankMapper& mapper,
                                      const ComputeModel& compute,
                                      const IterationOptions& options) {
  DagBuilder builder(model, par, mapper, compute, options);
  return builder.build();
}

void offset_dag_gpus(IterationDag& dag, int gpu_offset) {
  ensure(gpu_offset >= 0, "offset_dag_gpus: offset must be non-negative");
  if (gpu_offset == 0) return;
  for (Op& op : dag.ops) {
    for (GpuId& g : op.gpus) g = GpuId{g.value() + gpu_offset};
  }
  for (collective::CommGroup& group : dag.groups) {
    for (GpuId& r : group.ranks) r = GpuId{r.value() + gpu_offset};
  }
}

}  // namespace opus::workload
