#include "workload/model_config.h"

namespace opus::workload {

std::int64_t ModelConfig::attention_params() const {
  const std::int64_t h = hidden;
  const std::int64_t kv = kv_dim();
  // Q: h*h, K: h*kv, V: h*kv, O: h*h.
  return 2 * h * h + 2 * h * kv;
}

std::int64_t ModelConfig::ffn_params() const {
  // SwiGLU: gate (h x f), up (h x f), down (f x h).
  // Classic GELU MLP: up (h x f), down (f x h).
  return (swiglu ? 3LL : 2LL) * hidden * ffn_hidden;
}

std::int64_t ModelConfig::params_per_layer() const {
  const std::int64_t experts = moe() ? n_experts : 1;
  return attention_params() + experts * ffn_params();
}

std::int64_t ModelConfig::active_params_per_layer() const {
  const std::int64_t active = moe() ? experts_per_token : 1;
  return attention_params() + active * ffn_params();
}

std::int64_t ModelConfig::embedding_params() const {
  return 2LL * vocab * hidden;  // untied input embedding + output head
}

std::int64_t ModelConfig::total_params() const {
  return static_cast<std::int64_t>(n_layers) * params_per_layer() +
         embedding_params();
}

double ModelConfig::fwd_flops_per_token_per_layer() const {
  // Dense matmuls: 2 FLOPs per parameter per token. Attention scores and
  // values: 2 matmuls of [seq x head_dim] x [head_dim x seq] per head,
  // i.e. ~4 * seq * hidden FLOPs per token (causal masking halves it).
  const double dense = 2.0 * static_cast<double>(active_params_per_layer());
  const double attn = 2.0 * static_cast<double>(seq_len) * hidden;
  return dense + attn;
}

ModelConfig ModelConfig::llama3_8b() {
  ModelConfig m;
  m.name = "Llama3-8B";
  m.n_layers = 32;
  m.hidden = 4096;
  m.n_heads = 32;
  m.n_kv_heads = 8;
  m.ffn_hidden = 14336;
  m.vocab = 128256;
  m.seq_len = 4096;  // TorchTitan trace configuration (§3.1)
  return m;
}

ModelConfig ModelConfig::llama31_405b() {
  ModelConfig m;
  m.name = "Llama3.1-405B";
  m.n_layers = 126;
  m.hidden = 16384;
  m.n_heads = 128;
  m.n_kv_heads = 8;
  m.ffn_hidden = 53248;
  m.vocab = 128256;
  m.seq_len = 8192;
  return m;
}

ModelConfig ModelConfig::gpt3_175b() {
  ModelConfig m;
  m.name = "GPT-3-175B";
  m.n_layers = 96;
  m.hidden = 12288;
  m.n_heads = 96;
  m.n_kv_heads = 96;
  m.ffn_hidden = 49152;
  m.vocab = 50257;
  m.seq_len = 2048;
  m.swiglu = false;  // GPT-3 uses a GELU MLP
  return m;
}

ModelConfig ModelConfig::mixtral_8x7b() {
  ModelConfig m;
  m.name = "Mixtral-8x7B";
  m.n_layers = 32;
  m.hidden = 4096;
  m.n_heads = 32;
  m.n_kv_heads = 8;
  m.ffn_hidden = 14336;
  m.vocab = 32000;
  m.seq_len = 4096;
  m.n_experts = 8;
  m.experts_per_token = 2;
  return m;
}

ModelConfig ModelConfig::test_tiny() {
  ModelConfig m;
  m.name = "TestTiny";
  m.n_layers = 4;
  m.hidden = 256;
  m.n_heads = 4;
  m.n_kv_heads = 4;
  m.ffn_hidden = 1024;
  m.vocab = 1024;
  m.seq_len = 128;
  return m;
}

}  // namespace opus::workload
