// Training-iteration DAG construction.
//
// Builds the operation graph of one training iteration under hybrid
// parallelism with a 1F1B pipeline schedule (§2/Fig. 2 of the paper):
//
//  - per-layer forward/backward compute ops chained in 1F1B program order
//    per pipeline stage replica;
//  - FSDP: per-layer parameter AllGather at iteration start (prefetched,
//    overlapping the first forward), optional backward re-gather, and a
//    per-layer gradient ReduceScatter phase that fires after the whole
//    pipeline schedule completes (the "Sync." region of Fig. 3);
//  - pipeline Send/Recv per microbatch at stage boundaries;
//  - optimizer-synchronization AllReduces (grad norm) along DP and PP,
//    then a per-GPU optimizer step;
//  - optional simulated TP AllReduces (default: folded into compute time)
//    and optional MoE expert-parallel AllToAll per layer.
#pragma once

#include <string>
#include <vector>

#include "collective/comm_group.h"
#include "collective/schedule.h"
#include "common/ids.h"
#include "common/units.h"
#include "workload/comm_volume.h"
#include "workload/compute_model.h"
#include "workload/model_config.h"
#include "workload/parallelism.h"

namespace opus::workload {

enum class OpKind {
  kCompute,     ///< runs for `duration` on every GPU in `gpus`
  kCollective,  ///< executes the same collective on every listed group
  kJoin,        ///< zero-cost synchronization point
};

struct Op {
  OpId id;
  OpKind kind = OpKind::kJoin;
  std::string label;

  // kCompute:
  std::vector<GpuId> gpus;
  TimeNs duration = 0;

  // kCollective:
  collective::CollectiveType ctype = collective::CollectiveType::kAllReduce;
  collective::ParallelismDim dim = collective::ParallelismDim::kOther;
  Bytes payload = 0;             ///< per-group payload (planner semantics)
  std::vector<int> group_indices;  ///< into IterationDag::groups

  // Metadata for tracing / debugging.
  int pp_stage = -1;
  int microbatch = -1;
  int layer = -1;

  std::vector<OpId> deps;
};

struct IterationDag {
  std::vector<Op> ops;
  std::vector<collective::CommGroup> groups;

  const Op& op(OpId id) const { return ops[static_cast<std::size_t>(id.value())]; }
  std::size_t size() const { return ops.size(); }

  int collective_op_count() const;
  Bytes total_collective_payload() const;

  /// Checks structural invariants: ids are dense, deps reference earlier
  /// ops (the builder emits a topological order), group indices valid,
  /// compute ops have GPUs and collective ops have groups.
  void validate() const;
};

/// Pipeline execution schedule.
enum class PipelineSchedule {
  k1F1B,   ///< one-forward-one-backward (the paper's traced schedule)
  kGpipe,  ///< all forwards, then all backwards (fewer PP/DP interleaves)
};

struct IterationOptions {
  PipelineSchedule pipeline_schedule = PipelineSchedule::k1F1B;
  /// Simulate TP AllReduce traffic over the scale-up fabric. When false the
  /// analytic TP communication time is folded into layer durations (the
  /// default: TP never touches the rails, and Fig. 3 hides it).
  bool simulate_tp_comm = false;
  /// Re-AllGather FSDP parameters before the backward pass. Off by default:
  /// TorchTitan disables reshard-after-forward when pipeline parallelism is
  /// enabled, which matches the traced pattern of Fig. 3(a) (AllGather only
  /// in the warm-up region).
  bool bwd_regather = false;
  /// Simulate MoE expert-parallel AllToAll per layer (requires ep > 1 and an
  /// MoE model).
  bool simulate_ep_comm = true;
  /// Scale-up bandwidth used for folded TP communication time. NOTE: only
  /// authoritative when IterationOptions is used standalone —
  /// core::build_tenant overwrites it with ExperimentConfig::nvlink_bw so
  /// the experiment has exactly one scale-up-bandwidth knob (config/serde
  /// therefore does not expose this field; set the experiment-level one).
  Bandwidth nvlink_bw = Bandwidth::gbps(2400);

  /// Field-wise equality (config/serde skips fields equal to the default).
  friend bool operator==(const IterationOptions&,
                         const IterationOptions&) = default;
};

/// Builds the DAG of one training iteration. `mapper` supplies the groups;
/// the returned DAG owns copies of every group it references.
IterationDag build_training_iteration(const ModelConfig& model,
                                      const ParallelismConfig& par,
                                      const RankMapper& mapper,
                                      const ComputeModel& compute,
                                      const IterationOptions& options = {});

/// Number of layers hosted by pipeline stage `s` when `n_layers` does not
/// divide evenly (earlier stages take the remainder, TorchTitan-style).
int layers_of_stage(int n_layers, int pp, int stage);

/// Shifts every GPU rank in the DAG (compute ops and communication groups)
/// by `gpu_offset`. Used to place a job built with tenant-local ranks
/// 0..world-1 onto a node sub-range of a larger shared cluster; the offset
/// must be a whole number of nodes so rail locality (equal local ranks) is
/// preserved.
void offset_dag_gpus(IterationDag& dag, int gpu_offset);

}  // namespace opus::workload
