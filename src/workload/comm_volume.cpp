#include "workload/comm_volume.h"

#include "common/error.h"

namespace opus::workload {

CommVolumeModel::CommVolumeModel(const ModelConfig& model,
                                 const ParallelismConfig& par)
    : model_(model), par_(par) {
  par_.validate();
  ensure(model_.n_layers >= par_.pp,
         "need at least one layer per pipeline stage");
}

std::int64_t CommVolumeModel::tokens_per_microbatch() const {
  return static_cast<std::int64_t>(par_.microbatch_size) * model_.seq_len;
}

int CommVolumeModel::layers_per_stage() const {
  // Ceiling: the largest stage, matching uneven TorchTitan-style splits.
  return (model_.n_layers + par_.pp - 1) / par_.pp;
}

Bytes CommVolumeModel::fsdp_allgather_per_layer() const {
  // Each GPU's TP shard of the layer, gathered in bf16 across the DP group.
  return model_.params_per_layer() / par_.tp * model_.dtype_bytes;
}

Bytes CommVolumeModel::fsdp_reducescatter_per_layer() const {
  // Full fp32 gradient of the GPU's TP shard (per-rank reduce-scatter input).
  return model_.params_per_layer() / par_.tp * model_.grad_dtype_bytes;
}

Bytes CommVolumeModel::dp_allreduce_per_layer() const {
  return model_.params_per_layer() / par_.tp * model_.dtype_bytes;
}

Bytes CommVolumeModel::tp_allreduce_per_op() const {
  // Activation tensor of one microbatch (full sequence, no SP sharding).
  return tokens_per_microbatch() * model_.activation_bytes_per_token();
}

Bytes CommVolumeModel::tp_sp_allgather_per_op() const {
  return tokens_per_microbatch() * model_.activation_bytes_per_token();
}

Bytes CommVolumeModel::pp_sendrecv_per_microbatch() const {
  // Boundary activations travel unsharded between stages.
  return tokens_per_microbatch() * model_.activation_bytes_per_token();
}

Bytes CommVolumeModel::cp_allgather_per_layer() const {
  // KV tensors for the full sequence, sharded by CP before the gather.
  const Bytes kv_per_token =
      static_cast<Bytes>(2) * model_.kv_dim() * model_.dtype_bytes;
  return tokens_per_microbatch() * kv_per_token;
}

Bytes CommVolumeModel::ep_alltoall_per_layer() const {
  // Each token's hidden state is routed to experts_per_token experts.
  const int k = model_.moe() ? model_.experts_per_token : 1;
  return tokens_per_microbatch() * model_.activation_bytes_per_token() * k;
}

Bytes CommVolumeModel::embedding_half_ag() const {
  return static_cast<Bytes>(model_.vocab) * model_.hidden / par_.tp *
         model_.dtype_bytes;
}

Bytes CommVolumeModel::embedding_half_rs() const {
  return static_cast<Bytes>(model_.vocab) * model_.hidden / par_.tp *
         model_.grad_dtype_bytes;
}

Bytes CommVolumeModel::embedding_ag_extra(int stage) const {
  ensure(stage >= 0 && stage < par_.pp, "invalid stage");
  Bytes extra = 0;
  if (stage == 0) extra += embedding_half_ag();            // input embedding
  if (stage == par_.pp - 1) extra += embedding_half_ag();  // output head
  return extra;
}

Bytes CommVolumeModel::embedding_rs_extra(int stage) const {
  ensure(stage >= 0 && stage < par_.pp, "invalid stage");
  Bytes extra = 0;
  if (stage == 0) extra += embedding_half_rs();
  if (stage == par_.pp - 1) extra += embedding_half_rs();
  return extra;
}

std::vector<ParallelismTraits> parallelism_traits_table() {
  return {
      {"DP", "gbs/dp", "gbs/dp", "bwd AR per layer/per model"},
      {"FSDP", "gbs/dp, params/dp", "gbs/dp",
       "fwd AG, bwd RS per layer/model"},
      {"TP", "params/tp, grads/tp, optims/tp", "params/tp",
       "fwd bwd AR per operator"},
      {"TP & SP", "params/tp, grads/tp, optims/tp, activs/tp",
       "params/tp, activs/tp", "fwd bwd AG&RS per operator"},
      {"CP", "kv_cache/cp, seq/cp", "seq/cp", "fwd AG bwd RS per layer"},
      {"PP", "params/pp, grads/pp, optims/pp, activs/pp", "params/pp",
       "fwd bwd Send/Recv per microbatch"},
      {"EP", "experts/ep", "experts/ep", "fwd bwd AllToAll per layer"},
  };
}

}  // namespace opus::workload
