#include "workload/compute_model.h"

#include <algorithm>

namespace opus::workload {

TimeNs ComputeModel::layer_fwd(const ModelConfig& m,
                               const ParallelismConfig& p) const {
  const double tokens =
      static_cast<double>(p.microbatch_size) * m.seq_len / p.cp;
  const double flops =
      tokens * m.fwd_flops_per_token_per_layer() / p.tp;
  return static_cast<TimeNs>(flops / effective_flops() * kNsPerSec);
}

TimeNs ComputeModel::layer_bwd(const ModelConfig& m,
                               const ParallelismConfig& p) const {
  // Backward is 2x forward FLOPs; full activation recomputation replays the
  // forward pass first (3x total).
  const double mult = activation_recompute_ ? 3.0 : 2.0;
  return static_cast<TimeNs>(static_cast<double>(layer_fwd(m, p)) * mult);
}

TimeNs ComputeModel::layer_tp_comm(const ModelConfig& m,
                                   const ParallelismConfig& p,
                                   Bandwidth nvlink_bw) const {
  if (p.tp <= 1) return 0;
  // Two ring AllReduces of the activation tensor per layer per pass:
  // per-rank wire bytes = 2 * (tp-1)/tp * payload each.
  const Bytes activation = static_cast<Bytes>(p.microbatch_size) * m.seq_len /
                           p.cp * m.activation_bytes_per_token();
  const double wire = 2.0 * 2.0 * (p.tp - 1) / p.tp *
                      static_cast<double>(activation);
  return transfer_time(static_cast<Bytes>(wire), nvlink_bw);
}

TimeNs ComputeModel::optimizer_step(const ModelConfig& m,
                                    const ParallelismConfig& p) const {
  // Adam on the GPU's shard: read params+grads+2 moments, write params+
  // moments => ~7 fp32-equivalent accesses per parameter (mixed precision).
  const double shard_params =
      static_cast<double>(m.total_params()) / p.tp / p.pp /
      (p.fsdp ? p.dp : 1);
  const double bytes = shard_params * 7.0 * 4.0;
  return static_cast<TimeNs>(bytes / gpu_.hbm_bytes_per_sec * kNsPerSec);
}

}  // namespace opus::workload
