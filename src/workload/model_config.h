// Transformer model configurations and parameter/FLOP accounting.
//
// Sizes follow the standard decoder-only LLM layout with optional grouped-
// query attention (GQA) and optional mixture-of-experts (MoE) feed-forward
// blocks. Presets cover the models the paper's evaluation references:
// Llama3-8B (the traced workload), Llama3.1-405B (Eq. 1 window counting),
// plus GPT-3-175B and a Mixtral-style MoE for EP experiments.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace opus::workload {

struct ModelConfig {
  std::string name;
  int n_layers = 0;
  int hidden = 0;
  int n_heads = 0;
  int n_kv_heads = 0;  ///< GQA; == n_heads for multi-head attention
  int ffn_hidden = 0;  ///< intermediate size (per expert when MoE)
  int vocab = 0;
  int seq_len = 0;
  /// SwiGLU FFN (3 projections) vs classic GELU MLP (2 projections).
  bool swiglu = true;
  int dtype_bytes = 2;  ///< bf16 parameters/activations
  int grad_dtype_bytes = 4;  ///< fp32 gradient reduction (matches FSDP)
  /// MoE: number of experts per MoE layer (0 => dense model).
  int n_experts = 0;
  /// MoE: experts activated per token (top-k routing).
  int experts_per_token = 0;

  /// Field-wise equality (config/serde skips fields equal to the default).
  friend bool operator==(const ModelConfig&, const ModelConfig&) = default;

  bool moe() const { return n_experts > 0; }
  int head_dim() const { return hidden / n_heads; }
  int kv_dim() const { return n_kv_heads * head_dim(); }

  /// Attention block parameters (Q,K,V,O projections).
  std::int64_t attention_params() const;
  /// One feed-forward (SwiGLU) block: gate+up+down projections.
  std::int64_t ffn_params() const;
  /// One transformer layer: attention + FFN (all experts when MoE).
  std::int64_t params_per_layer() const;
  /// Parameters of a layer that are *activated* for one token (top-k experts
  /// only when MoE). Governs compute, not memory.
  std::int64_t active_params_per_layer() const;
  /// Input embedding + output head (untied).
  std::int64_t embedding_params() const;
  std::int64_t total_params() const;

  /// Forward FLOPs for one token through one layer (dense matmuls 2*params
  /// plus the attention score/value matmuls).
  double fwd_flops_per_token_per_layer() const;

  /// Bytes of one layer's parameters (dtype_bytes each).
  Bytes layer_param_bytes() const {
    return params_per_layer() * dtype_bytes;
  }
  /// Bytes of one token's activation vector.
  Bytes activation_bytes_per_token() const { return hidden * dtype_bytes; }

  // ---- Presets -------------------------------------------------------------
  static ModelConfig llama3_8b();
  static ModelConfig llama31_405b();
  static ModelConfig gpt3_175b();
  static ModelConfig mixtral_8x7b();
  /// Tiny model for fast unit tests.
  static ModelConfig test_tiny();
};

}  // namespace opus::workload
