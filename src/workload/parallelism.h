// Hybrid-parallelism configuration, rank mapping, and communication-group
// construction.
//
// Rank order follows the Megatron convention (fastest to slowest):
// TP -> CP -> DP -> PP. With TP*CP == gpus_per_node, tensor/context
// parallelism stays inside the scale-up domain and every scale-out group
// (DP, PP, EP) connects GPUs of equal local rank — i.e. lives on one rail,
// which is exactly the property rail-optimized fabrics exploit (Fig. 1).
#pragma once

#include <string>
#include <vector>

#include "collective/comm_group.h"
#include "common/ids.h"

namespace opus::workload {

struct ParallelismConfig {
  int tp = 1;  ///< tensor (+sequence) parallel degree
  int cp = 1;  ///< context parallel degree
  int dp = 1;  ///< data parallel (FSDP) degree
  int pp = 1;  ///< pipeline parallel degree
  int ep = 1;  ///< expert parallel degree; must divide dp
  bool fsdp = true;  ///< FSDP (AG/RS per layer) vs plain DP (AR per bucket)
  int n_microbatches = 8;
  int microbatch_size = 2;  ///< sequences per microbatch

  /// Field-wise equality (config/serde skips fields equal to the default).
  friend bool operator==(const ParallelismConfig&,
                         const ParallelismConfig&) = default;

  int world_size() const { return tp * cp * dp * pp; }
  int global_batch() const { return dp * n_microbatches * microbatch_size; }

  /// Throws InvariantError when degrees are inconsistent.
  void validate() const;

  std::string to_string() const;
};

/// Coordinates of one rank in the parallelism grid.
struct RankCoords {
  int tp = 0;
  int cp = 0;
  int dp = 0;
  int pp = 0;
};

/// Maps global GPU ranks to parallelism coordinates and builds the
/// communication groups for every axis.
class RankMapper {
 public:
  RankMapper(ParallelismConfig cfg, int gpus_per_node);

  const ParallelismConfig& config() const { return cfg_; }
  int gpus_per_node() const { return gpus_per_node_; }
  int world_size() const { return cfg_.world_size(); }
  int n_nodes() const { return cfg_.world_size() / gpus_per_node_; }

  RankCoords coords(GpuId g) const;
  GpuId gpu(const RankCoords& c) const;
  int pp_stage(GpuId g) const { return coords(g).pp; }

  /// All groups of the given axis. Group ordering: members sorted by the
  /// varying coordinate, so ring order == dimension order.
  const std::vector<collective::CommGroup>& tp_groups() const { return tp_; }
  const std::vector<collective::CommGroup>& cp_groups() const { return cp_; }
  const std::vector<collective::CommGroup>& dp_groups() const { return dp_; }
  const std::vector<collective::CommGroup>& pp_groups() const { return pp_; }
  const std::vector<collective::CommGroup>& ep_groups() const { return ep_; }

  /// The group of the given axis containing `g`.
  const collective::CommGroup& group_of(collective::ParallelismDim dim,
                                        GpuId g) const;

  /// True iff every member of `group` has the same local rank (the group
  /// lives entirely on one rail).
  bool rail_local(const collective::CommGroup& group) const;

 private:
  void build_groups();

  ParallelismConfig cfg_;
  int gpus_per_node_;
  std::vector<collective::CommGroup> tp_, cp_, dp_, pp_, ep_;
};

/// Rule-of-thumb parallelism advisor reproducing Table 1 of the paper.
struct ParallelismAdvice {
  std::string model_size;   ///< "Small (<10B)" or "Large (>10B)"
  std::string compute;      ///< GPU-count band
  std::string practices;    ///< recommended strategies
};

/// Table 1 row for a model of `params` parameters trained on `n_gpus`.
ParallelismAdvice advise_parallelism(std::int64_t params, int n_gpus);

/// All rows of Table 1 (for the table-reproduction bench).
std::vector<ParallelismAdvice> parallelism_rule_table();

}  // namespace opus::workload
