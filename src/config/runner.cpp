#include "config/runner.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "common/table.h"
#include "config/presets.h"
#include "core/experiment.h"
#include "fleet/fleet.h"

namespace opus::config {

namespace {

using json::Value;

[[noreturn]] void fail(const std::string& path, const std::string& message) {
  throw SerdeError(path, message);
}

const char* mode_token(RunSpec::Mode m) {
  switch (m) {
    case RunSpec::Mode::kExperiment: return "experiment";
    case RunSpec::Mode::kSweep: return "sweep";
    case RunSpec::Mode::kFleet: return "fleet";
  }
  return "?";
}

std::string read_key_string(const Value& j, const std::string& path) {
  if (!j.is_string()) {
    fail(path, std::string("expected string, got ") +
                   json::kind_name(j.kind()));
  }
  return j.as_string();
}

std::vector<std::string> split_dotted(const std::string& dotted,
                                      const std::string& path) {
  std::vector<std::string> segs;
  std::string::size_type start = 0;
  while (true) {
    const auto dot = dotted.find('.', start);
    const std::string seg = dotted.substr(
        start, dot == std::string::npos ? std::string::npos : dot - start);
    if (seg.empty()) {
      fail(path, "malformed field path \"" + dotted + "\"");
    }
    segs.push_back(seg);
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return segs;
}

}  // namespace

RunSpec parse_run_spec(const json::Value& j) {
  const std::string path = "$";
  if (!j.is_object()) {
    fail(path, std::string("expected object, got ") +
                   json::kind_name(j.kind()));
  }

  RunSpec spec;
  const Value* mode = j.find("mode");
  if (mode == nullptr) {
    fail(path + ".mode", "missing required key \"mode\"");
  }
  const std::string mode_str = read_key_string(*mode, path + ".mode");
  if (mode_str == "experiment") {
    spec.mode = RunSpec::Mode::kExperiment;
  } else if (mode_str == "sweep") {
    spec.mode = RunSpec::Mode::kSweep;
  } else if (mode_str == "fleet") {
    spec.mode = RunSpec::Mode::kFleet;
  } else {
    fail(path + ".mode", "unknown mode \"" + mode_str +
                             "\" (expected experiment|sweep|fleet)");
  }
  const bool is_fleet = spec.mode == RunSpec::Mode::kFleet;
  const bool is_sweep = spec.mode == RunSpec::Mode::kSweep;

  for (const auto& [key, value] : j.entries()) {
    const std::string kpath = path + "." + key;
    if (key == "mode") {
      continue;
    } else if (key == "preset") {
      spec.preset = read_key_string(value, kpath);
    } else if (key == "output") {
      spec.output = read_key_string(value, kpath);
    } else if (key == "experiment") {
      if (is_fleet) {
        fail(kpath, "key \"experiment\" does not apply to mode \"fleet\" "
                    "(use \"fleet\")");
      }
      spec.overrides = value;
    } else if (key == "fleet") {
      if (!is_fleet) {
        fail(kpath, std::string("key \"fleet\" does not apply to mode \"") +
                        mode_token(spec.mode) + "\" (use \"experiment\")");
      }
      spec.overrides = value;
    } else if (key == "axes") {
      if (!is_sweep) {
        fail(kpath, std::string("key \"axes\" does not apply to mode \"") +
                        mode_token(spec.mode) + "\"");
      }
      if (!value.is_object()) {
        fail(kpath, std::string("expected object, got ") +
                        json::kind_name(value.kind()));
      }
      for (const auto& [axis_path, axis_values] : value.entries()) {
        const std::string apath = kpath + "." + axis_path;
        split_dotted(axis_path, apath);  // validate segments early
        if (!axis_values.is_array()) {
          fail(apath, std::string("expected array of values, got ") +
                          json::kind_name(axis_values.kind()));
        }
        if (axis_values.size() == 0) {
          fail(apath, "sweep axis must list at least one value");
        }
        SweepAxis axis;
        axis.path = axis_path;
        for (std::size_t i = 0; i < axis_values.size(); ++i) {
          axis.values.push_back(axis_values[i]);
        }
        spec.axes.push_back(std::move(axis));
      }
    } else if (key == "sweep") {
      if (!is_sweep) {
        fail(kpath, std::string("key \"sweep\" does not apply to mode \"") +
                        mode_token(spec.mode) + "\"");
      }
      from_json(value, spec.sweep, kpath);
    } else {
      fail(kpath, "unknown key \"" + key + "\"");
    }
  }
  return spec;
}

core::ExperimentConfig resolve_experiment(const RunSpec& spec) {
  ensure(spec.mode != RunSpec::Mode::kFleet,
         "resolve_experiment: spec is a fleet run");
  core::ExperimentConfig cfg;
  if (!spec.preset.empty()) {
    const core::ExperimentConfig* preset =
        find_experiment_preset(spec.preset);
    if (preset == nullptr) {
      std::string known;
      for (const ExperimentPreset& p : experiment_presets()) {
        if (!known.empty()) known += ", ";
        known += p.name;
      }
      fail("$.preset", "unknown experiment preset \"" + spec.preset +
                           "\" (known: " + known + ")");
    }
    cfg = *preset;
  }
  if (!spec.overrides.is_null()) {
    from_json(spec.overrides, cfg, "$.experiment");
  }
  return cfg;
}

fleet::FleetConfig resolve_fleet(const RunSpec& spec) {
  ensure(spec.mode == RunSpec::Mode::kFleet,
         "resolve_fleet: spec is not a fleet run");
  fleet::FleetConfig cfg;
  if (!spec.preset.empty()) {
    const fleet::FleetConfig* preset = find_fleet_preset(spec.preset);
    if (preset == nullptr) {
      std::string known;
      for (const FleetPreset& p : fleet_presets()) {
        if (!known.empty()) known += ", ";
        known += p.name;
      }
      fail("$.preset", "unknown fleet preset \"" + spec.preset +
                           "\" (known: " + known + ")");
    }
    cfg = *preset;
  }
  if (!spec.overrides.is_null()) {
    from_json(spec.overrides, cfg, "$.fleet");
  }
  return cfg;
}

std::vector<json::Value> expand_axes(const std::vector<SweepAxis>& axes) {
  std::vector<Value> combos;
  combos.push_back(Value::object());  // the base cell
  for (const SweepAxis& axis : axes) {
    std::vector<Value> next;
    next.reserve(combos.size() * axis.values.size());
    for (const Value& combo : combos) {
      for (const Value& v : axis.values) {
        Value extended = combo;
        extended.set(axis.path, v);
        next.push_back(std::move(extended));
      }
    }
    combos = std::move(next);
  }
  return combos;
}

void apply_axis_overrides(const json::Value& flat, core::ExperimentConfig& cfg,
                          const std::string& path_prefix) {
  for (const auto& [dotted, value] : flat.entries()) {
    const std::vector<std::string> segs =
        split_dotted(dotted, path_prefix + "." + dotted);
    Value nested = value;
    for (auto it = segs.rbegin(); it != segs.rend(); ++it) {
      Value obj = Value::object();
      obj.set(*it, std::move(nested));
      nested = std::move(obj);
    }
    from_json(nested, cfg, path_prefix);
  }
}

namespace {

// Telemetry exports: series CSV and chrome trace JSON go to their
// configured paths; the wall-clock self-profile is appended to the human
// table text ONLY (never into the JSON document, which must stay
// deterministic).
void export_telemetry(obs::Telemetry* tel, std::string& table_text) {
  if (tel == nullptr) return;
  const obs::TelemetryConfig& tc = tel->config();
  if (!tc.series_path.empty() && tel->series() != nullptr) {
    write_text_file(tc.series_path, tel->series()->to_csv());
  }
  if (!tc.chrome_trace_path.empty()) {
    write_text_file(tc.chrome_trace_path, tel->trace().dump());
  }
  if (tel->profiler() != nullptr) {
    table_text += "\nself-profile (wall clock)\n";
    table_text += tel->profiler()->report().render();
  }
}

RunOutput run_single(const RunSpec& spec) {
  const core::ExperimentConfig cfg = resolve_experiment(spec);
  const core::ExperimentResult result = core::run_experiment(cfg);

  Value doc = Value::object();
  doc.set("mode", Value("experiment"));
  if (!spec.preset.empty()) doc.set("preset", Value(spec.preset));
  doc.set("config", to_json(cfg));
  doc.set("result", to_json(result));

  TextTable table({"Metric", "Value"});
  table.add_row({"Steady iteration", format_time(result.steady_iteration_time)});
  table.add_row({"OCS reconfigurations",
                 fmt_count(result.ocs_reconfigurations)});
  table.add_row({"OCS dark time", format_time(result.ocs_dark_time)});
  table.add_row({"Rotor rotations", fmt_count(result.rotor_rotations)});
  table.add_row({"Rail bytes", format_bytes(result.rail_bytes)});
  table.add_row({"Scale-up bytes", format_bytes(result.scale_up_bytes)});
  table.add_row({"Mgmt bytes", format_bytes(result.mgmt_bytes)});
  std::string text = table.render();
  export_telemetry(result.telemetry.get(), text);
  return {std::move(doc), std::move(text)};
}

RunOutput run_sweep_mode(const RunSpec& spec) {
  const core::ExperimentConfig base = resolve_experiment(spec);
  const std::vector<Value> combos = expand_axes(spec.axes);

  std::vector<core::ExperimentConfig> cells;
  cells.reserve(combos.size());
  for (const Value& combo : combos) {
    core::ExperimentConfig cfg = base;
    apply_axis_overrides(combo, cfg, "$.axes");
    cells.push_back(std::move(cfg));
  }

  const std::vector<core::ExperimentResult> results =
      core::run_sweep(cells, spec.sweep);
  const core::SweepShard shard =
      spec.sweep.use_shard ? core::sweep_shard() : core::SweepShard{};

  Value axes_echo = Value::object();
  for (const SweepAxis& axis : spec.axes) {
    Value vals = Value::array();
    for (const Value& v : axis.values) vals.push_back(v);
    axes_echo.set(axis.path, std::move(vals));
  }

  Value cell_docs = Value::array();
  std::vector<std::string> headers;
  headers.push_back("Cell");
  for (const SweepAxis& axis : spec.axes) headers.push_back(axis.path);
  headers.insert(headers.end(),
                 {"Steady iter", "OCS reconfigs", "Dark time"});
  TextTable table(std::move(headers));

  for (std::size_t i = 0; i < results.size(); ++i) {
    const bool owned = shard.owns(i);
    Value cell = Value::object();
    cell.set("overrides", combos[i]);
    cell.set("result", owned ? to_json(results[i]) : Value());
    cell_docs.push_back(std::move(cell));

    std::vector<std::string> row;
    row.push_back(std::to_string(i));
    for (const auto& [key, v] : combos[i].entries()) {
      row.push_back(json::dump(v, 0));
    }
    if (owned) {
      row.insert(row.end(),
                 {format_time(results[i].steady_iteration_time),
                  fmt_count(results[i].ocs_reconfigurations),
                  format_time(results[i].ocs_dark_time)});
    } else {
      row.insert(row.end(), {"-", "-", "-"});  // another process's cell
    }
    table.add_row(std::move(row));
  }

  Value doc = Value::object();
  doc.set("mode", Value("sweep"));
  if (!spec.preset.empty()) doc.set("preset", Value(spec.preset));
  doc.set("base", to_json(base));
  doc.set("axes", std::move(axes_echo));
  Value shard_doc = Value::object();
  shard_doc.set("index", Value(shard.index));
  shard_doc.set("count", Value(shard.count));
  doc.set("shard", std::move(shard_doc));
  doc.set("cells", std::move(cell_docs));
  return {std::move(doc), table.render()};
}

RunOutput run_fleet_mode(const RunSpec& spec) {
  const fleet::FleetConfig cfg = resolve_fleet(spec);
  const fleet::FleetResult result = fleet::run_fleet(cfg);
  const fleet::SlowdownStats slow = fleet::fleet_slowdown_stats(result);

  Value doc = Value::object();
  doc.set("mode", Value("fleet"));
  if (!spec.preset.empty()) doc.set("preset", Value(spec.preset));
  doc.set("config", to_json(cfg));
  doc.set("result", to_json(result));

  std::ostringstream text;
  text << fleet_job_table(result).render();
  text << "\nmakespan " << format_time(result.makespan) << " | utilization "
       << fmt_double(100.0 * result.utilization, 1) << "% | mean slowdown "
       << fmt_double(slow.mean, 2) << "x | p99 " << fmt_double(slow.p99, 2)
       << "x | rejected " << result.rejected_jobs << "\n";
  std::string text_str = text.str();
  export_telemetry(result.telemetry.get(), text_str);
  return {std::move(doc), std::move(text_str)};
}

}  // namespace

RunOutput run(const RunSpec& spec) {
  switch (spec.mode) {
    case RunSpec::Mode::kExperiment: return run_single(spec);
    case RunSpec::Mode::kSweep: return run_sweep_mode(spec);
    case RunSpec::Mode::kFleet: return run_fleet_mode(spec);
  }
  throw InvariantError("run: bad mode");
}

RunOutput run_file(const std::string& path) {
  return run(parse_run_spec(json::parse(read_text_file(path))));
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ensure(in.good(), "cannot open file for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  ensure(!in.bad(), "read failed: " + path);
  return buf.str();
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ensure(out.good(), "cannot open file for writing: " + path);
  out << content;
  out.flush();
  ensure(out.good(), "write failed: " + path);
}

}  // namespace opus::config
