#include "config/serde.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/error.h"

namespace opus::config {

SerdeError::SerdeError(std::string path, const std::string& message)
    : std::runtime_error("config error at " + path + ": " + message),
      path_(std::move(path)) {}

namespace {

using json::Value;

[[noreturn]] void fail(const std::string& path, const std::string& message) {
  throw SerdeError(path, message);
}

// ---- typed scalar readers (every error carries the JSON path) --------------

bool read_bool(const Value& j, const std::string& path) {
  if (!j.is_bool()) {
    fail(path, std::string("expected bool, got ") + json::kind_name(j.kind()));
  }
  return j.as_bool();
}

std::int64_t read_i64(const Value& j, const std::string& path,
                      std::int64_t min = std::numeric_limits<std::int64_t>::min(),
                      std::int64_t max = std::numeric_limits<std::int64_t>::max()) {
  if (!j.is_int()) {
    fail(path, std::string("expected integer, got ") +
                   json::kind_name(j.kind()));
  }
  const std::int64_t v = j.as_int();
  if (v < min || v > max) {
    fail(path, "value " + std::to_string(v) + " out of range [" +
                   std::to_string(min) + ", " + std::to_string(max) + "]");
  }
  return v;
}

int read_int(const Value& j, const std::string& path,
             int min = std::numeric_limits<int>::min(),
             int max = std::numeric_limits<int>::max()) {
  return static_cast<int>(read_i64(j, path, min, max));
}

double read_double(const Value& j, const std::string& path) {
  if (!j.is_number()) {
    fail(path, std::string("expected number, got ") +
                   json::kind_name(j.kind()));
  }
  return j.as_double();
}

double read_double_min(const Value& j, const std::string& path, double min,
                       bool exclusive = false) {
  const double v = read_double(j, path);
  if (exclusive ? !(v > min) : !(v >= min)) {
    fail(path, "value must be " + std::string(exclusive ? "> " : ">= ") +
                   std::to_string(min));
  }
  return v;
}

std::string read_string(const Value& j, const std::string& path) {
  if (!j.is_string()) {
    fail(path, std::string("expected string, got ") +
                   json::kind_name(j.kind()));
  }
  return j.as_string();
}

std::uint64_t read_seed(const Value& j, const std::string& path) {
  return static_cast<std::uint64_t>(read_i64(j, path, 0));
}

/// Seeds are stored uint64 but serialized as JSON integers; the library's
/// own seeds are small, and a config author has no reason to cross 2^63.
Value seed_to_json(std::uint64_t seed) {
  ensure(seed <= static_cast<std::uint64_t>(
                     std::numeric_limits<std::int64_t>::max()),
         "config: seed exceeds the JSON integer range");
  return Value(static_cast<std::int64_t>(seed));
}

TimeNs read_time_ns(const Value& j, const std::string& path,
                    TimeNs min = 0) {
  return read_i64(j, path, min);
}

Bytes read_bytes(const Value& j, const std::string& path) {
  return read_i64(j, path, 0);
}

Bandwidth read_gbps(const Value& j, const std::string& path) {
  return Bandwidth::gbps(read_double_min(j, path, 0.0));
}

Value gbps_to_json(Bandwidth bw) { return Value(bw.gbps_value()); }

// ---- object reader with unknown-key rejection ------------------------------

class ObjReader {
 public:
  ObjReader(const Value& j, const std::string& path) : j_(j), path_(path) {
    if (!j.is_object()) {
      fail(path, std::string("expected object, got ") +
                     json::kind_name(j.kind()));
    }
  }

  /// Registers `name` as a known key and returns its value (or nullptr).
  const Value* key(const char* name) {
    known_.push_back(name);
    return j_.find(name);
  }

  std::string sub(const char* name) const { return path_ + "." + name; }

  /// Throws for any key in the object that was never registered.
  void finish() const {
    for (const auto& [k, v] : j_.entries()) {
      if (std::find(known_.begin(), known_.end(), k) == known_.end()) {
        fail(path_ + "." + k, "unknown key \"" + k + "\"");
      }
    }
  }

 private:
  const Value& j_;
  const std::string& path_;
  std::vector<std::string> known_;
};

// ---- preset registries -----------------------------------------------------

const std::vector<std::pair<const char*, workload::ModelConfig>>&
model_presets() {
  static const std::vector<std::pair<const char*, workload::ModelConfig>>
      presets = {
          {"llama3_8b", workload::ModelConfig::llama3_8b()},
          {"llama31_405b", workload::ModelConfig::llama31_405b()},
          {"gpt3_175b", workload::ModelConfig::gpt3_175b()},
          {"mixtral_8x7b", workload::ModelConfig::mixtral_8x7b()},
          {"test_tiny", workload::ModelConfig::test_tiny()},
      };
  return presets;
}

const std::vector<std::pair<const char*, workload::GpuSpec>>& gpu_presets() {
  static const std::vector<std::pair<const char*, workload::GpuSpec>>
      presets = {
          {"a100", workload::GpuSpec::a100()},
          {"h100", workload::GpuSpec::h100()},
          {"h200", workload::GpuSpec::h200()},
      };
  return presets;
}

template <class T>
const T* preset_named(
    const std::vector<std::pair<const char*, T>>& presets,
    std::string_view name) {
  for (const auto& [n, v] : presets) {
    if (name == n) return &v;
  }
  return nullptr;
}

template <class T>
const char* preset_matching(
    const std::vector<std::pair<const char*, T>>& presets, const T& v) {
  for (const auto& [n, p] : presets) {
    if (v == p) return n;
  }
  return nullptr;
}

template <class T>
T resolve_preset(const std::vector<std::pair<const char*, T>>& presets,
                 const std::string& name, const std::string& path,
                 const char* what) {
  const T* p = preset_named(presets, name);
  if (p == nullptr) {
    std::string known;
    for (const auto& [n, v] : presets) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    fail(path, std::string("unknown ") + what + " preset \"" + name +
                   "\" (known: " + known + ")");
  }
  return *p;
}

}  // namespace

// ---- enums -----------------------------------------------------------------

const char* to_token(net::FabricKind f) {
  switch (f) {
    case net::FabricKind::kElectrical: return "electrical";
    case net::FabricKind::kOpusPhotonic: return "opus";
    case net::FabricKind::kStaticRing: return "ring";
    case net::FabricKind::kRotor: return "rotor";
  }
  return "?";
}

net::FabricKind fabric_kind_from_token(std::string_view s,
                                       const std::string& path) {
  if (s == "electrical") return net::FabricKind::kElectrical;
  if (s == "opus") return net::FabricKind::kOpusPhotonic;
  if (s == "ring") return net::FabricKind::kStaticRing;
  if (s == "rotor") return net::FabricKind::kRotor;
  fail(path, "unknown fabric \"" + std::string(s) +
                 "\" (expected electrical|opus|ring|rotor)");
}

const char* to_token(workload::PipelineSchedule s) {
  switch (s) {
    case workload::PipelineSchedule::k1F1B: return "1f1b";
    case workload::PipelineSchedule::kGpipe: return "gpipe";
  }
  return "?";
}

workload::PipelineSchedule pipeline_schedule_from_token(
    std::string_view s, const std::string& path) {
  if (s == "1f1b") return workload::PipelineSchedule::k1F1B;
  if (s == "gpipe") return workload::PipelineSchedule::kGpipe;
  fail(path, "unknown pipeline schedule \"" + std::string(s) +
                 "\" (expected 1f1b|gpipe)");
}

const char* to_token(fleet::PlacementPolicy p) {
  switch (p) {
    case fleet::PlacementPolicy::kFirstFit: return "first_fit";
    case fleet::PlacementPolicy::kRailAware: return "rail_aware";
  }
  return "?";
}

fleet::PlacementPolicy placement_policy_from_token(std::string_view s,
                                                   const std::string& path) {
  if (s == "first_fit") return fleet::PlacementPolicy::kFirstFit;
  if (s == "rail_aware") return fleet::PlacementPolicy::kRailAware;
  fail(path, "unknown placement policy \"" + std::string(s) +
                 "\" (expected first_fit|rail_aware)");
}

// ---- ModelConfig -----------------------------------------------------------
// name, n_layers, hidden, n_heads, n_kv_heads, ffn_hidden, vocab, seq_len,
// swiglu, dtype_bytes, grad_dtype_bytes, n_experts, experts_per_token.
static_assert(field_count<workload::ModelConfig> == 13,
              "ModelConfig changed: wire the new/removed field into "
              "to_json/from_json below, then update this count");

json::Value to_json(const workload::ModelConfig& v,
                    const workload::ModelConfig& defaults) {
  if (const char* name = preset_matching(model_presets(), v)) {
    return Value(name);
  }
  Value o = Value::object();
  if (v.name != defaults.name) o.set("name", Value(v.name));
  if (v.n_layers != defaults.n_layers) o.set("n_layers", Value(v.n_layers));
  if (v.hidden != defaults.hidden) o.set("hidden", Value(v.hidden));
  if (v.n_heads != defaults.n_heads) o.set("n_heads", Value(v.n_heads));
  if (v.n_kv_heads != defaults.n_kv_heads) {
    o.set("n_kv_heads", Value(v.n_kv_heads));
  }
  if (v.ffn_hidden != defaults.ffn_hidden) {
    o.set("ffn_hidden", Value(v.ffn_hidden));
  }
  if (v.vocab != defaults.vocab) o.set("vocab", Value(v.vocab));
  if (v.seq_len != defaults.seq_len) o.set("seq_len", Value(v.seq_len));
  if (v.swiglu != defaults.swiglu) o.set("swiglu", Value(v.swiglu));
  if (v.dtype_bytes != defaults.dtype_bytes) {
    o.set("dtype_bytes", Value(v.dtype_bytes));
  }
  if (v.grad_dtype_bytes != defaults.grad_dtype_bytes) {
    o.set("grad_dtype_bytes", Value(v.grad_dtype_bytes));
  }
  if (v.n_experts != defaults.n_experts) {
    o.set("n_experts", Value(v.n_experts));
  }
  if (v.experts_per_token != defaults.experts_per_token) {
    o.set("experts_per_token", Value(v.experts_per_token));
  }
  return o;
}

void from_json(const json::Value& j, workload::ModelConfig& v,
               const std::string& path) {
  if (j.is_string()) {
    v = resolve_preset(model_presets(), j.as_string(), path, "model");
    return;
  }
  ObjReader r(j, path);
  if (const Value* p = r.key("preset")) {
    v = resolve_preset(model_presets(), read_string(*p, r.sub("preset")),
                       r.sub("preset"), "model");
  }
  if (const Value* p = r.key("name")) v.name = read_string(*p, r.sub("name"));
  if (const Value* p = r.key("n_layers")) {
    v.n_layers = read_int(*p, r.sub("n_layers"), 0);
  }
  if (const Value* p = r.key("hidden")) {
    v.hidden = read_int(*p, r.sub("hidden"), 0);
  }
  if (const Value* p = r.key("n_heads")) {
    v.n_heads = read_int(*p, r.sub("n_heads"), 0);
  }
  if (const Value* p = r.key("n_kv_heads")) {
    v.n_kv_heads = read_int(*p, r.sub("n_kv_heads"), 0);
  }
  if (const Value* p = r.key("ffn_hidden")) {
    v.ffn_hidden = read_int(*p, r.sub("ffn_hidden"), 0);
  }
  if (const Value* p = r.key("vocab")) {
    v.vocab = read_int(*p, r.sub("vocab"), 0);
  }
  if (const Value* p = r.key("seq_len")) {
    v.seq_len = read_int(*p, r.sub("seq_len"), 0);
  }
  if (const Value* p = r.key("swiglu")) {
    v.swiglu = read_bool(*p, r.sub("swiglu"));
  }
  if (const Value* p = r.key("dtype_bytes")) {
    v.dtype_bytes = read_int(*p, r.sub("dtype_bytes"), 1);
  }
  if (const Value* p = r.key("grad_dtype_bytes")) {
    v.grad_dtype_bytes = read_int(*p, r.sub("grad_dtype_bytes"), 1);
  }
  if (const Value* p = r.key("n_experts")) {
    v.n_experts = read_int(*p, r.sub("n_experts"), 0);
  }
  if (const Value* p = r.key("experts_per_token")) {
    v.experts_per_token = read_int(*p, r.sub("experts_per_token"), 0);
  }
  r.finish();
}

// ---- GpuSpec ---------------------------------------------------------------
// name, peak_flops, hbm_bytes_per_sec.
static_assert(field_count<workload::GpuSpec> == 3,
              "GpuSpec changed: wire the new/removed field into "
              "to_json/from_json below, then update this count");

json::Value to_json(const workload::GpuSpec& v,
                    const workload::GpuSpec& defaults) {
  if (const char* name = preset_matching(gpu_presets(), v)) {
    return Value(name);
  }
  Value o = Value::object();
  if (v.name != defaults.name) o.set("name", Value(v.name));
  if (v.peak_flops != defaults.peak_flops) {
    o.set("peak_flops", Value(v.peak_flops));
  }
  if (v.hbm_bytes_per_sec != defaults.hbm_bytes_per_sec) {
    o.set("hbm_bytes_per_sec", Value(v.hbm_bytes_per_sec));
  }
  return o;
}

void from_json(const json::Value& j, workload::GpuSpec& v,
               const std::string& path) {
  if (j.is_string()) {
    v = resolve_preset(gpu_presets(), j.as_string(), path, "GPU");
    return;
  }
  ObjReader r(j, path);
  if (const Value* p = r.key("preset")) {
    v = resolve_preset(gpu_presets(), read_string(*p, r.sub("preset")),
                       r.sub("preset"), "GPU");
  }
  if (const Value* p = r.key("name")) v.name = read_string(*p, r.sub("name"));
  if (const Value* p = r.key("peak_flops")) {
    v.peak_flops = read_double_min(*p, r.sub("peak_flops"), 0.0, true);
  }
  if (const Value* p = r.key("hbm_bytes_per_sec")) {
    v.hbm_bytes_per_sec =
        read_double_min(*p, r.sub("hbm_bytes_per_sec"), 0.0, true);
  }
  r.finish();
}

// ---- ParallelismConfig -----------------------------------------------------
// tp, cp, dp, pp, ep, fsdp, n_microbatches, microbatch_size.
static_assert(field_count<workload::ParallelismConfig> == 8,
              "ParallelismConfig changed: wire the new/removed field into "
              "to_json/from_json below, then update this count");

json::Value to_json(const workload::ParallelismConfig& v,
                    const workload::ParallelismConfig& defaults) {
  Value o = Value::object();
  if (v.tp != defaults.tp) o.set("tp", Value(v.tp));
  if (v.cp != defaults.cp) o.set("cp", Value(v.cp));
  if (v.dp != defaults.dp) o.set("dp", Value(v.dp));
  if (v.pp != defaults.pp) o.set("pp", Value(v.pp));
  if (v.ep != defaults.ep) o.set("ep", Value(v.ep));
  if (v.fsdp != defaults.fsdp) o.set("fsdp", Value(v.fsdp));
  if (v.n_microbatches != defaults.n_microbatches) {
    o.set("n_microbatches", Value(v.n_microbatches));
  }
  if (v.microbatch_size != defaults.microbatch_size) {
    o.set("microbatch_size", Value(v.microbatch_size));
  }
  return o;
}

void from_json(const json::Value& j, workload::ParallelismConfig& v,
               const std::string& path) {
  ObjReader r(j, path);
  if (const Value* p = r.key("tp")) v.tp = read_int(*p, r.sub("tp"), 1);
  if (const Value* p = r.key("cp")) v.cp = read_int(*p, r.sub("cp"), 1);
  if (const Value* p = r.key("dp")) v.dp = read_int(*p, r.sub("dp"), 1);
  if (const Value* p = r.key("pp")) v.pp = read_int(*p, r.sub("pp"), 1);
  if (const Value* p = r.key("ep")) v.ep = read_int(*p, r.sub("ep"), 1);
  if (const Value* p = r.key("fsdp")) v.fsdp = read_bool(*p, r.sub("fsdp"));
  if (const Value* p = r.key("n_microbatches")) {
    v.n_microbatches = read_int(*p, r.sub("n_microbatches"), 1);
  }
  if (const Value* p = r.key("microbatch_size")) {
    v.microbatch_size = read_int(*p, r.sub("microbatch_size"), 1);
  }
  r.finish();
}

// ---- IterationOptions ------------------------------------------------------
// pipeline_schedule, simulate_tp_comm, bwd_regather, simulate_ep_comm,
// nvlink_bw. nvlink_bw is deliberately NOT exposed: core::build_tenant
// overwrites it with ExperimentConfig::nvlink_bw, so the experiment-level
// key is the one knob (see the field's comment in workload/iteration.h).
static_assert(field_count<workload::IterationOptions> == 5,
              "IterationOptions changed: wire the new/removed field into "
              "to_json/from_json below, then update this count");

json::Value to_json(const workload::IterationOptions& v,
                    const workload::IterationOptions& defaults) {
  Value o = Value::object();
  if (v.pipeline_schedule != defaults.pipeline_schedule) {
    o.set("pipeline_schedule", Value(to_token(v.pipeline_schedule)));
  }
  if (v.simulate_tp_comm != defaults.simulate_tp_comm) {
    o.set("simulate_tp_comm", Value(v.simulate_tp_comm));
  }
  if (v.bwd_regather != defaults.bwd_regather) {
    o.set("bwd_regather", Value(v.bwd_regather));
  }
  if (v.simulate_ep_comm != defaults.simulate_ep_comm) {
    o.set("simulate_ep_comm", Value(v.simulate_ep_comm));
  }
  return o;
}

void from_json(const json::Value& j, workload::IterationOptions& v,
               const std::string& path) {
  ObjReader r(j, path);
  if (const Value* p = r.key("pipeline_schedule")) {
    v.pipeline_schedule = pipeline_schedule_from_token(
        read_string(*p, r.sub("pipeline_schedule")),
        r.sub("pipeline_schedule"));
  }
  if (const Value* p = r.key("simulate_tp_comm")) {
    v.simulate_tp_comm = read_bool(*p, r.sub("simulate_tp_comm"));
  }
  if (const Value* p = r.key("bwd_regather")) {
    v.bwd_regather = read_bool(*p, r.sub("bwd_regather"));
  }
  if (const Value* p = r.key("simulate_ep_comm")) {
    v.simulate_ep_comm = read_bool(*p, r.sub("simulate_ep_comm"));
  }
  r.finish();
}

// ---- IterationEngine::Options ----------------------------------------------
// dispatch_min, dispatch_max, seed.
static_assert(field_count<workload::IterationEngine::Options> == 3,
              "IterationEngine::Options changed: wire the new/removed field "
              "into to_json/from_json below, then update this count");

json::Value to_json(const workload::IterationEngine::Options& v,
                    const workload::IterationEngine::Options& defaults) {
  Value o = Value::object();
  if (v.dispatch_min != defaults.dispatch_min) {
    o.set("dispatch_min_ns", Value(v.dispatch_min));
  }
  if (v.dispatch_max != defaults.dispatch_max) {
    o.set("dispatch_max_ns", Value(v.dispatch_max));
  }
  if (v.seed != defaults.seed) o.set("seed", seed_to_json(v.seed));
  return o;
}

void from_json(const json::Value& j, workload::IterationEngine::Options& v,
               const std::string& path) {
  ObjReader r(j, path);
  if (const Value* p = r.key("dispatch_min_ns")) {
    v.dispatch_min = read_time_ns(*p, r.sub("dispatch_min_ns"));
  }
  if (const Value* p = r.key("dispatch_max_ns")) {
    v.dispatch_max = read_time_ns(*p, r.sub("dispatch_max_ns"));
  }
  if (const Value* p = r.key("seed")) {
    v.seed = read_seed(*p, r.sub("seed"));
  }
  r.finish();
}

// ---- FaultConfig -----------------------------------------------------------
// enabled, mtbf_per_port, mttr, seed, horizon, max_failures.
static_assert(field_count<core::FaultConfig> == 6,
              "FaultConfig changed: wire the new/removed field into "
              "to_json/from_json below, then update this count");

json::Value to_json(const core::FaultConfig& v,
                    const core::FaultConfig& defaults) {
  Value o = Value::object();
  if (v.enabled != defaults.enabled) o.set("enabled", Value(v.enabled));
  if (v.mtbf_per_port != defaults.mtbf_per_port) {
    o.set("mtbf_per_port_ns", Value(v.mtbf_per_port));
  }
  if (v.mttr != defaults.mttr) o.set("mttr_ns", Value(v.mttr));
  if (v.seed != defaults.seed) o.set("seed", seed_to_json(v.seed));
  if (v.horizon != defaults.horizon) o.set("horizon_ns", Value(v.horizon));
  if (v.max_failures != defaults.max_failures) {
    o.set("max_failures", Value(v.max_failures));
  }
  return o;
}

void from_json(const json::Value& j, core::FaultConfig& v,
               const std::string& path) {
  ObjReader r(j, path);
  if (const Value* p = r.key("enabled")) {
    v.enabled = read_bool(*p, r.sub("enabled"));
  }
  if (const Value* p = r.key("mtbf_per_port_ns")) {
    v.mtbf_per_port = read_time_ns(*p, r.sub("mtbf_per_port_ns"), 1);
  }
  if (const Value* p = r.key("mttr_ns")) {
    v.mttr = read_time_ns(*p, r.sub("mttr_ns"));
  }
  if (const Value* p = r.key("seed")) v.seed = read_seed(*p, r.sub("seed"));
  if (const Value* p = r.key("horizon_ns")) {
    v.horizon = read_time_ns(*p, r.sub("horizon_ns"));
  }
  if (const Value* p = r.key("max_failures")) {
    v.max_failures = read_int(*p, r.sub("max_failures"), 0);
  }
  r.finish();
}

// ---- TelemetryConfig -------------------------------------------------------
// metrics, series_path, chrome_trace_path, sample_interval, self_profile.
static_assert(field_count<obs::TelemetryConfig> == 5,
              "TelemetryConfig changed: wire the new/removed field into "
              "to_json/from_json below, then update this count");

json::Value to_json(const obs::TelemetryConfig& v,
                    const obs::TelemetryConfig& defaults) {
  Value o = Value::object();
  if (v.metrics != defaults.metrics) o.set("metrics", Value(v.metrics));
  if (v.series_path != defaults.series_path) {
    o.set("series_path", Value(v.series_path));
  }
  if (v.chrome_trace_path != defaults.chrome_trace_path) {
    o.set("chrome_trace_path", Value(v.chrome_trace_path));
  }
  if (v.sample_interval != defaults.sample_interval) {
    o.set("sample_interval_ns", Value(v.sample_interval));
  }
  if (v.self_profile != defaults.self_profile) {
    o.set("self_profile", Value(v.self_profile));
  }
  return o;
}

void from_json(const json::Value& j, obs::TelemetryConfig& v,
               const std::string& path) {
  ObjReader r(j, path);
  if (const Value* p = r.key("metrics")) {
    v.metrics = read_bool(*p, r.sub("metrics"));
  }
  if (const Value* p = r.key("series_path")) {
    v.series_path = read_string(*p, r.sub("series_path"));
  }
  if (const Value* p = r.key("chrome_trace_path")) {
    v.chrome_trace_path = read_string(*p, r.sub("chrome_trace_path"));
  }
  if (const Value* p = r.key("sample_interval_ns")) {
    v.sample_interval = read_time_ns(*p, r.sub("sample_interval_ns"), 1);
  }
  if (const Value* p = r.key("self_profile")) {
    v.self_profile = read_bool(*p, r.sub("self_profile"));
  }
  r.finish();
}

// ---- SweepOptions ----------------------------------------------------------
// threads, use_shard.
static_assert(field_count<core::SweepOptions> == 2,
              "SweepOptions changed: wire the new/removed field into "
              "to_json/from_json below, then update this count");

json::Value to_json(const core::SweepOptions& v,
                    const core::SweepOptions& defaults) {
  Value o = Value::object();
  if (v.threads != defaults.threads) o.set("threads", Value(v.threads));
  if (v.use_shard != defaults.use_shard) {
    o.set("use_shard", Value(v.use_shard));
  }
  return o;
}

void from_json(const json::Value& j, core::SweepOptions& v,
               const std::string& path) {
  ObjReader r(j, path);
  if (const Value* p = r.key("threads")) {
    v.threads = read_int(*p, r.sub("threads"));
  }
  if (const Value* p = r.key("use_shard")) {
    v.use_shard = read_bool(*p, r.sub("use_shard"));
  }
  r.finish();
}

// ---- ExperimentConfig ------------------------------------------------------
// model, parallelism, gpus_per_node, fabric, rotor_slot_time,
// rotor_port_spread, nic_ports, nic_total_bw, nvlink_bw, ocs_reconfig_delay,
// mgmt_bw, gpu, mfu, activation_recompute, iteration, engine, provisioning,
// mgmt_offload_threshold, iterations, record_compute_trace,
// eager_fabric_wiring, faults, telemetry.
static_assert(field_count<core::ExperimentConfig> == 23,
              "ExperimentConfig changed: wire the new/removed field into "
              "to_json/from_json below, then update this count");

json::Value to_json(const core::ExperimentConfig& v,
                    const core::ExperimentConfig& defaults) {
  Value o = Value::object();
  if (!(v.model == defaults.model)) {
    o.set("model", to_json(v.model, defaults.model));
  }
  if (!(v.parallelism == defaults.parallelism)) {
    o.set("parallelism", to_json(v.parallelism, defaults.parallelism));
  }
  if (v.gpus_per_node != defaults.gpus_per_node) {
    o.set("gpus_per_node", Value(v.gpus_per_node));
  }
  if (v.fabric != defaults.fabric) {
    o.set("fabric", Value(to_token(v.fabric)));
  }
  if (v.rotor_slot_time != defaults.rotor_slot_time) {
    o.set("rotor_slot_time_ns", Value(v.rotor_slot_time));
  }
  if (v.rotor_port_spread != defaults.rotor_port_spread) {
    o.set("rotor_port_spread", Value(v.rotor_port_spread));
  }
  if (v.nic_ports != defaults.nic_ports) {
    o.set("nic_ports", Value(v.nic_ports));
  }
  if (!(v.nic_total_bw == defaults.nic_total_bw)) {
    o.set("nic_total_bw_gbps", gbps_to_json(v.nic_total_bw));
  }
  if (!(v.nvlink_bw == defaults.nvlink_bw)) {
    o.set("nvlink_bw_gbps", gbps_to_json(v.nvlink_bw));
  }
  if (v.ocs_reconfig_delay != defaults.ocs_reconfig_delay) {
    o.set("ocs_reconfig_delay_ns", Value(v.ocs_reconfig_delay));
  }
  if (!(v.mgmt_bw == defaults.mgmt_bw)) {
    o.set("mgmt_bw_gbps", gbps_to_json(v.mgmt_bw));
  }
  if (!(v.gpu == defaults.gpu)) o.set("gpu", to_json(v.gpu, defaults.gpu));
  if (v.mfu != defaults.mfu) o.set("mfu", Value(v.mfu));
  if (v.activation_recompute != defaults.activation_recompute) {
    o.set("activation_recompute", Value(v.activation_recompute));
  }
  if (!(v.iteration == defaults.iteration)) {
    o.set("iteration", to_json(v.iteration, defaults.iteration));
  }
  if (!(v.engine == defaults.engine)) {
    o.set("engine", to_json(v.engine, defaults.engine));
  }
  if (v.provisioning != defaults.provisioning) {
    o.set("provisioning", Value(v.provisioning));
  }
  if (v.mgmt_offload_threshold != defaults.mgmt_offload_threshold) {
    o.set("mgmt_offload_threshold_bytes", Value(v.mgmt_offload_threshold));
  }
  if (v.iterations != defaults.iterations) {
    o.set("iterations", Value(v.iterations));
  }
  if (v.record_compute_trace != defaults.record_compute_trace) {
    o.set("record_compute_trace", Value(v.record_compute_trace));
  }
  if (v.eager_fabric_wiring != defaults.eager_fabric_wiring) {
    o.set("eager_fabric_wiring", Value(v.eager_fabric_wiring));
  }
  if (!(v.faults == defaults.faults)) {
    o.set("faults", to_json(v.faults, defaults.faults));
  }
  if (!(v.telemetry == defaults.telemetry)) {
    o.set("telemetry", to_json(v.telemetry, defaults.telemetry));
  }
  return o;
}

void from_json(const json::Value& j, core::ExperimentConfig& v,
               const std::string& path) {
  ObjReader r(j, path);
  if (const Value* p = r.key("model")) from_json(*p, v.model, r.sub("model"));
  if (const Value* p = r.key("parallelism")) {
    from_json(*p, v.parallelism, r.sub("parallelism"));
  }
  if (const Value* p = r.key("gpus_per_node")) {
    v.gpus_per_node = read_int(*p, r.sub("gpus_per_node"), 1);
  }
  if (const Value* p = r.key("fabric")) {
    v.fabric = fabric_kind_from_token(read_string(*p, r.sub("fabric")),
                                      r.sub("fabric"));
  }
  if (const Value* p = r.key("rotor_slot_time_ns")) {
    v.rotor_slot_time = read_time_ns(*p, r.sub("rotor_slot_time_ns"), 1);
  }
  if (const Value* p = r.key("rotor_port_spread")) {
    v.rotor_port_spread = read_int(*p, r.sub("rotor_port_spread"), 1);
  }
  if (const Value* p = r.key("nic_ports")) {
    v.nic_ports = read_int(*p, r.sub("nic_ports"), 1);
  }
  if (const Value* p = r.key("nic_total_bw_gbps")) {
    v.nic_total_bw = read_gbps(*p, r.sub("nic_total_bw_gbps"));
  }
  if (const Value* p = r.key("nvlink_bw_gbps")) {
    v.nvlink_bw = read_gbps(*p, r.sub("nvlink_bw_gbps"));
  }
  if (const Value* p = r.key("ocs_reconfig_delay_ns")) {
    v.ocs_reconfig_delay = read_time_ns(*p, r.sub("ocs_reconfig_delay_ns"));
  }
  if (const Value* p = r.key("mgmt_bw_gbps")) {
    v.mgmt_bw = read_gbps(*p, r.sub("mgmt_bw_gbps"));
  }
  if (const Value* p = r.key("gpu")) from_json(*p, v.gpu, r.sub("gpu"));
  if (const Value* p = r.key("mfu")) {
    v.mfu = read_double(*p, r.sub("mfu"));
    if (v.mfu <= 0.0 || v.mfu > 1.0) {
      fail(r.sub("mfu"), "MFU must be in (0, 1]");
    }
  }
  if (const Value* p = r.key("activation_recompute")) {
    v.activation_recompute = read_bool(*p, r.sub("activation_recompute"));
  }
  if (const Value* p = r.key("iteration")) {
    from_json(*p, v.iteration, r.sub("iteration"));
  }
  if (const Value* p = r.key("engine")) {
    from_json(*p, v.engine, r.sub("engine"));
  }
  if (const Value* p = r.key("provisioning")) {
    v.provisioning = read_bool(*p, r.sub("provisioning"));
  }
  if (const Value* p = r.key("mgmt_offload_threshold_bytes")) {
    v.mgmt_offload_threshold =
        read_bytes(*p, r.sub("mgmt_offload_threshold_bytes"));
  }
  if (const Value* p = r.key("iterations")) {
    v.iterations = read_int(*p, r.sub("iterations"), 1);
  }
  if (const Value* p = r.key("record_compute_trace")) {
    v.record_compute_trace = read_bool(*p, r.sub("record_compute_trace"));
  }
  if (const Value* p = r.key("eager_fabric_wiring")) {
    v.eager_fabric_wiring = read_bool(*p, r.sub("eager_fabric_wiring"));
  }
  if (const Value* p = r.key("faults")) {
    from_json(*p, v.faults, r.sub("faults"));
  }
  if (const Value* p = r.key("telemetry")) {
    from_json(*p, v.telemetry, r.sub("telemetry"));
  }
  r.finish();
}

// ---- JobShape --------------------------------------------------------------
// name, model, parallelism, weight.
static_assert(field_count<fleet::JobShape> == 4,
              "JobShape changed: wire the new/removed field into "
              "to_json/from_json below, then update this count");

json::Value to_json(const fleet::JobShape& v, const fleet::JobShape& defaults) {
  Value o = Value::object();
  if (v.name != defaults.name) o.set("name", Value(v.name));
  if (!(v.model == defaults.model)) {
    o.set("model", to_json(v.model, defaults.model));
  }
  if (!(v.parallelism == defaults.parallelism)) {
    o.set("parallelism", to_json(v.parallelism, defaults.parallelism));
  }
  if (v.weight != defaults.weight) o.set("weight", Value(v.weight));
  return o;
}

void from_json(const json::Value& j, fleet::JobShape& v,
               const std::string& path) {
  ObjReader r(j, path);
  if (const Value* p = r.key("name")) v.name = read_string(*p, r.sub("name"));
  if (const Value* p = r.key("model")) from_json(*p, v.model, r.sub("model"));
  if (const Value* p = r.key("parallelism")) {
    from_json(*p, v.parallelism, r.sub("parallelism"));
  }
  if (const Value* p = r.key("weight")) {
    v.weight = read_double_min(*p, r.sub("weight"), 0.0, true);
  }
  r.finish();
}

// ---- ArrivalConfig ---------------------------------------------------------
// seed, n_jobs, mean_interarrival, iterations, shapes.
static_assert(field_count<fleet::ArrivalConfig> == 5,
              "ArrivalConfig changed: wire the new/removed field into "
              "to_json/from_json below, then update this count");

json::Value to_json(const fleet::ArrivalConfig& v,
                    const fleet::ArrivalConfig& defaults) {
  Value o = Value::object();
  if (v.seed != defaults.seed) o.set("seed", seed_to_json(v.seed));
  if (v.n_jobs != defaults.n_jobs) o.set("n_jobs", Value(v.n_jobs));
  if (v.mean_interarrival != defaults.mean_interarrival) {
    o.set("mean_interarrival_ns", Value(v.mean_interarrival));
  }
  if (v.iterations != defaults.iterations) {
    o.set("iterations", Value(v.iterations));
  }
  if (!(v.shapes == defaults.shapes)) {
    Value shapes = Value::array();
    for (const fleet::JobShape& s : v.shapes) {
      shapes.push_back(to_json(s, fleet::JobShape{}));
    }
    o.set("shapes", std::move(shapes));
  }
  return o;
}

void from_json(const json::Value& j, fleet::ArrivalConfig& v,
               const std::string& path) {
  ObjReader r(j, path);
  if (const Value* p = r.key("seed")) v.seed = read_seed(*p, r.sub("seed"));
  if (const Value* p = r.key("n_jobs")) {
    v.n_jobs = read_int(*p, r.sub("n_jobs"), 0);
  }
  if (const Value* p = r.key("mean_interarrival_ns")) {
    v.mean_interarrival = read_time_ns(*p, r.sub("mean_interarrival_ns"), 1);
  }
  if (const Value* p = r.key("iterations")) {
    v.iterations = read_int(*p, r.sub("iterations"), 1);
  }
  if (const Value* p = r.key("shapes")) {
    const std::string spath = r.sub("shapes");
    if (!p->is_array()) {
      fail(spath, std::string("expected array, got ") +
                      json::kind_name(p->kind()));
    }
    v.shapes.clear();
    for (std::size_t i = 0; i < p->size(); ++i) {
      fleet::JobShape shape;
      from_json((*p)[i], shape, spath + "[" + std::to_string(i) + "]");
      v.shapes.push_back(std::move(shape));
    }
  }
  r.finish();
}

// ---- FleetConfig -----------------------------------------------------------
// n_nodes, base, arrivals, policy, isolated_baselines, baseline_sweep,
// use_shard.
static_assert(field_count<fleet::FleetConfig> == 7,
              "FleetConfig changed: wire the new/removed field into "
              "to_json/from_json below, then update this count");

json::Value to_json(const fleet::FleetConfig& v,
                    const fleet::FleetConfig& defaults) {
  Value o = Value::object();
  if (v.n_nodes != defaults.n_nodes) o.set("n_nodes", Value(v.n_nodes));
  if (!(v.base == defaults.base)) {
    o.set("base", to_json(v.base, defaults.base));
  }
  if (!(v.arrivals == defaults.arrivals)) {
    o.set("arrivals", to_json(v.arrivals, defaults.arrivals));
  }
  if (v.policy != defaults.policy) {
    o.set("policy", Value(to_token(v.policy)));
  }
  if (v.isolated_baselines != defaults.isolated_baselines) {
    o.set("isolated_baselines", Value(v.isolated_baselines));
  }
  if (!(v.baseline_sweep == defaults.baseline_sweep)) {
    o.set("baseline_sweep", to_json(v.baseline_sweep, defaults.baseline_sweep));
  }
  if (v.use_shard != defaults.use_shard) {
    o.set("use_shard", Value(v.use_shard));
  }
  return o;
}

void from_json(const json::Value& j, fleet::FleetConfig& v,
               const std::string& path) {
  ObjReader r(j, path);
  if (const Value* p = r.key("n_nodes")) {
    v.n_nodes = read_int(*p, r.sub("n_nodes"), 1);
  }
  if (const Value* p = r.key("base")) from_json(*p, v.base, r.sub("base"));
  if (const Value* p = r.key("arrivals")) {
    from_json(*p, v.arrivals, r.sub("arrivals"));
  }
  if (const Value* p = r.key("policy")) {
    v.policy = placement_policy_from_token(read_string(*p, r.sub("policy")),
                                           r.sub("policy"));
  }
  if (const Value* p = r.key("isolated_baselines")) {
    v.isolated_baselines = read_bool(*p, r.sub("isolated_baselines"));
  }
  if (const Value* p = r.key("baseline_sweep")) {
    from_json(*p, v.baseline_sweep, r.sub("baseline_sweep"));
  }
  if (const Value* p = r.key("use_shard")) {
    v.use_shard = read_bool(*p, r.sub("use_shard"));
  }
  r.finish();
}

core::ExperimentConfig experiment_from_json(const json::Value& j,
                                            const std::string& path) {
  core::ExperimentConfig cfg;
  from_json(j, cfg, path);
  return cfg;
}

fleet::FleetConfig fleet_from_json(const json::Value& j,
                                   const std::string& path) {
  fleet::FleetConfig cfg;
  from_json(j, cfg, path);
  return cfg;
}

// ---- results ---------------------------------------------------------------

// requests, satisfied_immediately, reconfigurations, queued, total_wait,
// max_wait.
static_assert(field_count<core::OpusController::Stats> == 6,
              "OpusController::Stats changed: wire the new/removed field "
              "into to_json below, then update this count");

namespace {

Value controller_stats_to_json(const core::OpusController::Stats& s) {
  Value o = Value::object();
  o.set("requests", Value(s.requests));
  o.set("satisfied_immediately", Value(s.satisfied_immediately));
  o.set("reconfigurations", Value(s.reconfigurations));
  o.set("queued", Value(s.queued));
  o.set("total_wait_ns", Value(s.total_wait));
  o.set("max_wait_ns", Value(s.max_wait));
  return o;
}

// failures_injected, failures_skipped, repairs_completed.
static_assert(field_count<core::FaultProcess::Stats> == 3,
              "FaultProcess::Stats changed: wire the new/removed field into "
              "to_json below, then update this count");

Value fault_stats_to_json(const core::FaultProcess::Stats& s) {
  Value o = Value::object();
  o.set("failures_injected", Value(s.failures_injected));
  o.set("failures_skipped", Value(s.failures_skipped));
  o.set("repairs_completed", Value(s.repairs_completed));
  return o;
}

Value times_to_json(const std::vector<TimeNs>& times) {
  Value a = Value::array();
  for (TimeNs t : times) a.push_back(Value(t));
  return a;
}

}  // namespace

// iteration_times, steady_iteration_time, ocs_reconfigurations,
// ocs_dark_time, rotor_rotations, rotor_deferred_sends, controller,
// shim_speculative_requests, shim_mispredictions, recorder (not serialized:
// the trace is its own export format, trace/export), rail_bytes,
// scale_up_bytes, pxn_bytes, mgmt_bytes, multihop_bytes, fault_stats,
// fault_trace_size, telemetry (serialized as the finalized metrics snapshot
// only when the hub exists AND asked for metrics — series/trace are file
// exports, and a metrics-less hub must not perturb the result document).
static_assert(field_count<core::ExperimentResult> == 18,
              "ExperimentResult changed: wire the new/removed field into "
              "to_json below, then update this count");

json::Value to_json(const core::ExperimentResult& r) {
  Value o = Value::object();
  o.set("iteration_times_ns", times_to_json(r.iteration_times));
  o.set("steady_iteration_time_ns", Value(r.steady_iteration_time));
  o.set("ocs_reconfigurations", Value(r.ocs_reconfigurations));
  o.set("ocs_dark_time_ns", Value(r.ocs_dark_time));
  o.set("rotor_rotations", Value(r.rotor_rotations));
  o.set("rotor_deferred_sends", Value(r.rotor_deferred_sends));
  o.set("controller", controller_stats_to_json(r.controller));
  o.set("shim_speculative_requests", Value(r.shim_speculative_requests));
  o.set("shim_mispredictions", Value(r.shim_mispredictions));
  o.set("rail_bytes", Value(r.rail_bytes));
  o.set("scale_up_bytes", Value(r.scale_up_bytes));
  o.set("pxn_bytes", Value(r.pxn_bytes));
  o.set("mgmt_bytes", Value(r.mgmt_bytes));
  o.set("multihop_bytes", Value(r.multihop_bytes));
  o.set("fault_stats", fault_stats_to_json(r.fault_stats));
  o.set("fault_trace_size", Value(r.fault_trace_size));
  if (r.telemetry != nullptr && r.telemetry->config().metrics) {
    Value t = Value::object();
    t.set("metrics", json::Value(r.telemetry->final_metrics()));
    o.set("telemetry", std::move(t));
  }
  return o;
}

// id, arrival, shape_index, shape, iterations, engine_seed.
static_assert(field_count<fleet::JobSpec> == 6,
              "JobSpec changed: wire the new/removed field into to_json "
              "below, then update this count");

// first, count.
static_assert(field_count<net::NodeSpan> == 2,
              "NodeSpan changed: wire the new/removed field into to_json "
              "below, then update this count");

// spec, rejected, placement, start, finish, iteration_times, isolated_time,
// slowdown, rail_bytes, scale_up_bytes, pxn_bytes, mgmt_bytes,
// multihop_bytes, isolated_rail_bytes, isolated_multihop_bytes,
// rotor_rotations, rotor_deferred_sends, dark_time, dark_share, ports_lost,
// replacements, availability.
static_assert(field_count<fleet::FleetJobResult> == 22,
              "FleetJobResult changed: wire the new/removed field into "
              "to_json below, then update this count");

json::Value to_json(const fleet::FleetJobResult& r) {
  Value spec = Value::object();
  spec.set("id", Value(r.spec.id));
  spec.set("arrival_ns", Value(r.spec.arrival));
  spec.set("shape_index", Value(r.spec.shape_index));
  spec.set("shape_name", Value(r.spec.shape.name));
  spec.set("iterations", Value(r.spec.iterations));
  // Full 64-bit derived seed: as a decimal string, because JSON integers
  // stop at 2^63 and the SplitMix-derived per-job seeds use all 64 bits.
  spec.set("engine_seed", Value(std::to_string(r.spec.engine_seed)));

  Value placement = Value::object();
  placement.set("first", Value(r.placement.first));
  placement.set("count", Value(r.placement.count));

  Value o = Value::object();
  o.set("spec", std::move(spec));
  o.set("rejected", Value(r.rejected));
  o.set("placement", std::move(placement));
  o.set("start_ns", Value(r.start));
  o.set("finish_ns", Value(r.finish));
  o.set("queueing_delay_ns", Value(r.queueing_delay()));
  o.set("jct_ns", Value(r.jct()));
  o.set("iteration_times_ns", times_to_json(r.iteration_times));
  o.set("isolated_time_ns", Value(r.isolated_time));
  o.set("slowdown", Value(r.slowdown));
  o.set("rail_bytes", Value(r.rail_bytes));
  o.set("scale_up_bytes", Value(r.scale_up_bytes));
  o.set("pxn_bytes", Value(r.pxn_bytes));
  o.set("mgmt_bytes", Value(r.mgmt_bytes));
  o.set("multihop_bytes", Value(r.multihop_bytes));
  o.set("isolated_rail_bytes", Value(r.isolated_rail_bytes));
  o.set("isolated_multihop_bytes", Value(r.isolated_multihop_bytes));
  o.set("rotor_rotations", Value(r.rotor_rotations));
  o.set("rotor_deferred_sends", Value(r.rotor_deferred_sends));
  o.set("dark_time_ns", Value(r.dark_time));
  o.set("dark_share", Value(r.dark_share));
  o.set("ports_lost", Value(r.ports_lost));
  o.set("replacements", Value(r.replacements));
  o.set("availability", Value(r.availability));
  return o;
}

// index, count.
static_assert(field_count<core::SweepShard> == 2,
              "SweepShard changed: wire the new/removed field into to_json "
              "below, then update this count");

// config (not serialized here — the caller echoes the config it ran),
// shard, jobs, makespan, utilization, peak_fragmentation,
// peak_free_extents, rejected_jobs, telemetry (finalized metrics snapshot,
// present only when the hub exists and asked for metrics).
static_assert(field_count<fleet::FleetResult> == 9,
              "FleetResult changed: wire the new/removed field into to_json "
              "below, then update this count");

json::Value to_json(const fleet::FleetResult& r) {
  Value shard = Value::object();
  shard.set("index", Value(r.shard.index));
  shard.set("count", Value(r.shard.count));

  Value jobs = Value::array();
  for (const fleet::FleetJobResult& jr : r.jobs) jobs.push_back(to_json(jr));

  Value o = Value::object();
  o.set("shard", std::move(shard));
  o.set("jobs", std::move(jobs));
  o.set("makespan_ns", Value(r.makespan));
  o.set("utilization", Value(r.utilization));
  o.set("peak_fragmentation", Value(r.peak_fragmentation));
  o.set("peak_free_extents", Value(r.peak_free_extents));
  o.set("rejected_jobs", Value(r.rejected_jobs));
  if (r.telemetry != nullptr && r.telemetry->config().metrics) {
    Value t = Value::object();
    t.set("metrics", json::Value(r.telemetry->final_metrics()));
    o.set("telemetry", std::move(t));
  }
  return o;
}

}  // namespace opus::config
