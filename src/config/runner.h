// The declarative-experiment driver behind tools/opus_run: parse a JSON run
// spec, dispatch the right engine (run_experiment / run_sweep / run_fleet),
// and return a deterministic result document plus a human-readable table.
//
// Run-spec schema (unknown keys rejected with their JSON path):
//   {
//     "mode": "experiment" | "sweep" | "fleet",        // required
//     "preset": "<name>",                              // optional; registry
//                                                      // depends on mode
//     "experiment": { ...ExperimentConfig overrides }, // experiment/sweep
//     "fleet": { ...FleetConfig overrides },           // fleet only
//     "axes": { "<dotted.path>": [v, ...], ... },      // sweep only
//     "sweep": { "threads": N, "use_shard": bool },    // sweep only
//     "output": "<path>"                               // optional; where
//                                                      // opus_run writes the
//                                                      // result document
//   }
//
// Sweep axes name any serde-known scalar field by its dotted JSON path
// ("parallelism.dp", "ocs_reconfig_delay_ns", "fabric"); the cell list is
// the cartesian product in declaration order (last axis fastest), fanned
// through core::run_sweep, honoring OPUS_SWEEP_THREADS and — with
// "use_shard" — OPUS_SWEEP_SHARD process sharding (unowned cells report
// null results).
//
// The result document is deterministic (no wall-clock content): golden-file
// regression (goldens/, scripts/update_goldens.sh) diffs it byte-exact.
#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "config/serde.h"
#include "core/sweep.h"

namespace opus::config {

struct SweepAxis {
  std::string path;           ///< dotted field path, e.g. "parallelism.dp"
  std::vector<json::Value> values;
};

struct RunSpec {
  enum class Mode { kExperiment, kSweep, kFleet };
  Mode mode = Mode::kExperiment;
  std::string preset;         ///< empty = start from the struct defaults
  /// Overrides applied on top of the preset/defaults ("experiment" or
  /// "fleet" key; null when absent).
  json::Value overrides;
  std::vector<SweepAxis> axes;
  core::SweepOptions sweep;
  std::string output;         ///< empty = opus_run picks/stdout-only
};

/// Parses and validates a run spec. Throws SerdeError (with JSON path) on
/// unknown keys, keys that do not apply to the mode, unknown presets, or
/// malformed axes.
RunSpec parse_run_spec(const json::Value& j);

struct RunOutput {
  json::Value document;       ///< deterministic result document
  std::string table_text;     ///< rendered human-readable table(s)
};

/// Resolves the spec's config (preset, then overrides), runs it, and builds
/// the result document. Configs echo as diffs against struct defaults.
RunOutput run(const RunSpec& spec);

/// Reads `path`, parses it (json::ParseError on malformed text, SerdeError
/// on schema violations), and runs it.
RunOutput run_file(const std::string& path);

/// Resolved config helpers (preset + overrides, no run) — the benches and
/// tests use these to pin that the JSON path and the compiled-in path build
/// identical configs.
core::ExperimentConfig resolve_experiment(const RunSpec& spec);
fleet::FleetConfig resolve_fleet(const RunSpec& spec);

/// Expands the sweep axes into per-cell override documents (cartesian
/// product, last axis fastest). Each entry is a flat {dotted.path: value}
/// object, in axis declaration order.
std::vector<json::Value> expand_axes(const std::vector<SweepAxis>& axes);

/// Applies one flat {dotted.path: value} override object onto `cfg`
/// (errors carry `path_prefix` + the dotted path).
void apply_axis_overrides(const json::Value& flat, core::ExperimentConfig& cfg,
                          const std::string& path_prefix);

/// Whole-file read/write (InvariantError on I/O failure). write_text_file
/// writes atomically-enough for golden scripts: content then rename is NOT
/// used — it truncates in place — but it always ends the file with exactly
/// the given bytes.
std::string read_text_file(const std::string& path);
void write_text_file(const std::string& path, const std::string& content);

}  // namespace opus::config
