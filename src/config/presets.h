// Named experiment/fleet presets: the single source of truth for the
// configurations the benches, examples, and checked-in configs/*.json run.
//
// A preset is a plain config struct; opus_run resolves {"preset": "<name>"}
// through these registries and config/serde applies any further JSON keys
// on top (override semantics). The benches build their cells through the
// same cell functions, so a golden produced from configs/<name>.json and a
// bench row produced from the compiled-in path are byte-identical — the
// property tests/test_opus_run.cpp pins.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.h"
#include "fleet/fleet.h"

namespace opus::config {

// ---- cell builders (shared with bench/) ------------------------------------

/// One simulated cell of Table 3's scalability leg: a test_tiny DP x 2-stage
/// pipeline on `nodes` single-GPU nodes over the Opus fabric with a 1 ms
/// piezo/MEMS-class reconfiguration delay (bench_table3_ocs_scalability).
core::ExperimentConfig table3_cell(int nodes);

/// The fleet_quickstart example scenario: 8 mixed-shape jobs on a shared
/// 16-node cluster of 4-GPU nodes, rail-aware placement.
fleet::FleetConfig fleet_quickstart_cell(net::FabricKind fabric);

/// One cell of bench_fleet_multitenant's failure-churn ablation: a fixed
/// arrival trace with (`churn`) or without a seeded Poisson port-failure
/// process. `smoke` selects the CI-sized cell (16 nodes / 8 jobs) the
/// goldens pin; full is 32 nodes / 16 jobs.
fleet::FleetConfig fleet_churn_cell(net::FabricKind fabric, bool churn,
                                    bool smoke);

// ---- registries ------------------------------------------------------------

struct ExperimentPreset {
  std::string name;
  std::string description;
  core::ExperimentConfig config;
};

struct FleetPreset {
  std::string name;
  std::string description;
  fleet::FleetConfig config;
};

/// All named single-experiment presets, in stable display order.
const std::vector<ExperimentPreset>& experiment_presets();

/// All named fleet presets, in stable display order.
const std::vector<FleetPreset>& fleet_presets();

/// Lookup by name; nullptr when unknown.
const core::ExperimentConfig* find_experiment_preset(std::string_view name);
const fleet::FleetConfig* find_fleet_preset(std::string_view name);

}  // namespace opus::config
