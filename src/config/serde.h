// Bidirectional JSON serde for every experiment-facing config struct, plus
// one-way serializers for results — the schema of the declarative
// experiment layer ("configs are data", docs/ARCHITECTURE.md).
//
// Contract:
//  - from_json(j, v, path) applies `j` ONTO `v`: keys present override,
//    keys absent keep v's current value. Callers seed `v` with the defaults
//    they want (a fresh struct, or a preset to refine). Unknown keys,
//    wrong-typed values, and out-of-range values throw SerdeError carrying
//    the exact JSON path ("$.parallelism.dp").
//  - to_json(v, defaults) emits ONLY the fields that differ from
//    `defaults`, so serialized configs are diffs against the struct's
//    natural defaults and parse(serialize(cfg)) == cfg exactly. A default
//    config serializes to {}.
//  - Units ride in the key names: *_ns (integer nanoseconds), *_gbps
//    (double), *_bytes (integer). Enums are strings ("opus", "1f1b",
//    "rail_aware"). ModelConfig/GpuSpec accept a preset string (or a
//    "preset" key inside the object, applied first) in place of fields.
//  - Every serializer sits next to a compile-time field-count
//    static_assert (serde.cpp): adding a struct field without wiring its
//    serde fails the build, so no knob can silently go orphan.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "common/json.h"
#include "core/experiment.h"
#include "core/sweep.h"
#include "fleet/fleet.h"

namespace opus::config {

/// Schema violation (unknown key, wrong type, out-of-range value) with the
/// exact JSON path of the offending value.
class SerdeError : public std::runtime_error {
 public:
  SerdeError(std::string path, const std::string& message);
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---- compile-time field counting -------------------------------------------
// Counts the direct members of an aggregate by probing the largest braced
// initializer it accepts (the Boost.PFR idiom). serde.cpp static_asserts
// the count next to each serializer; tests pin it too.
namespace detail {

struct AnyField {
  template <class T>
  constexpr operator T() const noexcept;
};

template <class T, std::size_t... I>
constexpr bool initializable_with(std::index_sequence<I...>) {
  return requires { T{((void)I, AnyField{})...}; };
}

template <class T, std::size_t N = 0>
constexpr std::size_t field_count_impl() {
  if constexpr (initializable_with<T>(std::make_index_sequence<N + 1>{})) {
    return field_count_impl<T, N + 1>();
  } else {
    return N;
  }
}

}  // namespace detail

/// Number of direct fields of aggregate `T`.
template <class T>
inline constexpr std::size_t field_count = detail::field_count_impl<T>();

// ---- enums -----------------------------------------------------------------
/// "electrical" | "opus" | "ring" | "rotor" (the fleet_quickstart tokens).
const char* to_token(net::FabricKind f);
net::FabricKind fabric_kind_from_token(std::string_view s,
                                       const std::string& path);

/// "1f1b" | "gpipe".
const char* to_token(workload::PipelineSchedule s);
workload::PipelineSchedule pipeline_schedule_from_token(
    std::string_view s, const std::string& path);

/// "first_fit" | "rail_aware".
const char* to_token(fleet::PlacementPolicy p);
fleet::PlacementPolicy placement_policy_from_token(std::string_view s,
                                                   const std::string& path);

// ---- configs (bidirectional) ------------------------------------------------
json::Value to_json(const workload::ModelConfig& v,
                    const workload::ModelConfig& defaults = {});
void from_json(const json::Value& j, workload::ModelConfig& v,
               const std::string& path = "$");

json::Value to_json(const workload::GpuSpec& v,
                    const workload::GpuSpec& defaults = {});
void from_json(const json::Value& j, workload::GpuSpec& v,
               const std::string& path = "$");

json::Value to_json(const workload::ParallelismConfig& v,
                    const workload::ParallelismConfig& defaults = {});
void from_json(const json::Value& j, workload::ParallelismConfig& v,
               const std::string& path = "$");

json::Value to_json(const workload::IterationOptions& v,
                    const workload::IterationOptions& defaults = {});
void from_json(const json::Value& j, workload::IterationOptions& v,
               const std::string& path = "$");

json::Value to_json(const workload::IterationEngine::Options& v,
                    const workload::IterationEngine::Options& defaults = {});
void from_json(const json::Value& j, workload::IterationEngine::Options& v,
               const std::string& path = "$");

json::Value to_json(const core::FaultConfig& v,
                    const core::FaultConfig& defaults = {});
void from_json(const json::Value& j, core::FaultConfig& v,
               const std::string& path = "$");

json::Value to_json(const obs::TelemetryConfig& v,
                    const obs::TelemetryConfig& defaults = {});
void from_json(const json::Value& j, obs::TelemetryConfig& v,
               const std::string& path = "$");

json::Value to_json(const core::SweepOptions& v,
                    const core::SweepOptions& defaults = {});
void from_json(const json::Value& j, core::SweepOptions& v,
               const std::string& path = "$");

json::Value to_json(const core::ExperimentConfig& v,
                    const core::ExperimentConfig& defaults = {});
void from_json(const json::Value& j, core::ExperimentConfig& v,
               const std::string& path = "$");

json::Value to_json(const fleet::JobShape& v,
                    const fleet::JobShape& defaults = {});
void from_json(const json::Value& j, fleet::JobShape& v,
               const std::string& path = "$");

json::Value to_json(const fleet::ArrivalConfig& v,
                    const fleet::ArrivalConfig& defaults = {});
void from_json(const json::Value& j, fleet::ArrivalConfig& v,
               const std::string& path = "$");

json::Value to_json(const fleet::FleetConfig& v,
                    const fleet::FleetConfig& defaults = {});
void from_json(const json::Value& j, fleet::FleetConfig& v,
               const std::string& path = "$");

/// Convenience: a fresh default struct with `j` applied on top.
core::ExperimentConfig experiment_from_json(const json::Value& j,
                                            const std::string& path = "$");
fleet::FleetConfig fleet_from_json(const json::Value& j,
                                   const std::string& path = "$");

// ---- results (one-way, full emission — a stable machine schema) -------------
json::Value to_json(const core::ExperimentResult& r);
json::Value to_json(const fleet::FleetJobResult& r);
json::Value to_json(const fleet::FleetResult& r);

}  // namespace opus::config
