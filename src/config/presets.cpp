#include "config/presets.h"

namespace opus::config {

core::ExperimentConfig table3_cell(int nodes) {
  core::ExperimentConfig cfg;
  cfg.model = workload::ModelConfig::test_tiny();
  cfg.model.n_layers = 4;
  cfg.parallelism.tp = 1;
  cfg.parallelism.dp = nodes / 2;
  cfg.parallelism.pp = 2;
  cfg.parallelism.n_microbatches = 4;
  cfg.parallelism.microbatch_size = 1;
  cfg.gpus_per_node = 1;
  cfg.iterations = 2;
  cfg.record_compute_trace = false;
  cfg.fabric = net::FabricKind::kOpusPhotonic;
  cfg.ocs_reconfig_delay = msecs(1);
  return cfg;
}

fleet::FleetConfig fleet_quickstart_cell(net::FabricKind fabric) {
  fleet::FleetConfig cfg;
  cfg.n_nodes = 16;
  cfg.base.fabric = fabric;
  cfg.base.gpus_per_node = 4;
  cfg.base.ocs_reconfig_delay = usecs(100);
  cfg.arrivals.seed = 7;
  cfg.arrivals.n_jobs = 8;
  cfg.arrivals.iterations = 2;
  cfg.arrivals.mean_interarrival = msecs(20);
  cfg.policy = fleet::PlacementPolicy::kRailAware;
  return cfg;
}

fleet::FleetConfig fleet_churn_cell(net::FabricKind fabric, bool churn,
                                    bool smoke) {
  fleet::FleetConfig cfg;
  cfg.n_nodes = smoke ? 16 : 32;
  cfg.base.fabric = fabric;
  cfg.base.gpus_per_node = 4;
  cfg.base.ocs_reconfig_delay = usecs(100);
  cfg.base.rotor_slot_time = msecs(1);
  cfg.policy = fleet::PlacementPolicy::kRailAware;
  cfg.arrivals.seed = 2026;
  cfg.arrivals.n_jobs = smoke ? 8 : 16;
  cfg.arrivals.iterations = 2;
  cfg.arrivals.mean_interarrival = msecs(1);
  if (churn) {
    // Hot enough that repairs overlap new failures, so availability
    // actually separates from 1.0 (see bench_fleet_multitenant).
    cfg.base.faults.enabled = true;
    cfg.base.faults.seed = 3;
    cfg.base.faults.mtbf_per_port = msecs(8);
    cfg.base.faults.mttr = msecs(40);
    cfg.base.faults.max_failures = smoke ? 48 : 96;
  }
  return cfg;
}

const std::vector<ExperimentPreset>& experiment_presets() {
  static const std::vector<ExperimentPreset> presets = {
      {"perlmutter_llama3_8b",
       "Llama-3 8B on a Perlmutter-like A100 partition (the validation "
       "anchor, core::perlmutter_llama3_8b_config)",
       core::perlmutter_llama3_8b_config()},
      {"table3_opus_8",
       "Table-3 scalability leg: 8-node Opus warm-up cell",
       table3_cell(8)},
      {"table3_opus_64",
       "Table-3 scalability leg: 64-node Opus cell",
       table3_cell(64)},
      {"table3_opus_512",
       "Table-3 scalability leg: 512-node Opus regression cell",
       table3_cell(512)},
  };
  return presets;
}

const std::vector<FleetPreset>& fleet_presets() {
  static const std::vector<FleetPreset> presets = {
      {"fleet_quickstart_opus",
       "8 mixed-shape jobs sharing a 16-node Opus cluster (the "
       "fleet_quickstart example)",
       fleet_quickstart_cell(net::FabricKind::kOpusPhotonic)},
      {"fleet_churn_clean_opus",
       "Churn-ablation baseline: the fixed trace, fault-free (CI-sized)",
       fleet_churn_cell(net::FabricKind::kOpusPhotonic, /*churn=*/false,
                        /*smoke=*/true)},
      {"fleet_churn_opus",
       "Churn ablation: the same trace under seeded failure/repair churn "
       "(CI-sized)",
       fleet_churn_cell(net::FabricKind::kOpusPhotonic, /*churn=*/true,
                        /*smoke=*/true)},
  };
  return presets;
}

const core::ExperimentConfig* find_experiment_preset(std::string_view name) {
  for (const ExperimentPreset& p : experiment_presets()) {
    if (p.name == name) return &p.config;
  }
  return nullptr;
}

const fleet::FleetConfig* find_fleet_preset(std::string_view name) {
  for (const FleetPreset& p : fleet_presets()) {
    if (p.name == name) return &p.config;
  }
  return nullptr;
}

}  // namespace opus::config
