// GPU-backend network cost and power model (Fig. 7 of the paper).
//
// Methodology follows Rail-only [71] / TopoOpt [72]: count switches,
// transceivers, and OCS ports for each fabric at full bisection bandwidth,
// price them with public list figures, and exclude NICs (identical in all
// designs), fiber, and cabling (as the paper does).
//
// Fabrics compared for N GPUs of 400 Gb/s each (DGX H200: 8 GPUs/node):
//  - Fat-tree: 3-tier folded Clos over all N endpoints.
//  - Rail-optimized: 8 rails, each a leaf tier over N/8 endpoints, plus a
//    spine tier interconnecting the rails (Fig. 1 of the paper).
//  - Opus: 8 flat photonic rails; each GPU splits its NIC into two 200G
//    ports attached to the rail OCS. No switch ASICs, no OEO conversions —
//    the only powered elements are the NIC-side transceivers and the OCS.
#pragma once

#include <string>

#include "costmodel/ocs_catalog.h"

namespace opus::costmodel {

/// Component prices and power. Defaults use public list-price figures for
/// 400G-generation hardware (FS.com QSFP-DD optics and Tomahawk-4-class
/// 64x400G switches; Polatis-class piezo OCS).
struct CostParams {
  double transceiver_400g_cost = 400.0;
  double transceiver_400g_power_w = 12.0;
  double transceiver_200g_cost = 150.0;
  double transceiver_200g_power_w = 5.0;

  int switch_radix = 64;  ///< 64 x 400GbE
  double switch_cost = 16'000.0;
  double switch_power_w = 1'750.0;

  OcsSpec ocs = ocs_by_technology("Piezo");  ///< Polatis 576-port
  double ocs_cost_per_port = 265.0;
  double ocs_power_w_per_switch = 50.0;

  int gpus_per_node = 8;  ///< DGX H200; also the number of rails
  int nic_ports = 2;      ///< Opus 2-port NIC configuration
};

struct FabricCost {
  std::string fabric;
  /// OCS technology the BOM was priced on (empty for all-electrical
  /// fabrics) — carried so consumers never re-derive it from the display
  /// name.
  std::string ocs_technology;
  int n_gpus = 0;
  int n_switches = 0;      ///< electrical packet switches
  int n_ocs = 0;           ///< optical circuit switches
  int n_transceivers = 0;  ///< pluggable optics (all link ends)

  double switch_cost = 0.0;
  double ocs_cost = 0.0;
  double transceiver_cost = 0.0;
  double switch_power_w = 0.0;
  double ocs_power_w = 0.0;
  double transceiver_power_w = 0.0;

  double total_cost() const {
    return switch_cost + ocs_cost + transceiver_cost;
  }
  double total_power_w() const {
    return switch_power_w + ocs_power_w + transceiver_power_w;
  }
};

FabricCost fat_tree_fabric(int n_gpus, const CostParams& params = {});
FabricCost rail_optimized_fabric(int n_gpus, const CostParams& params = {});
FabricCost opus_fabric(int n_gpus, const CostParams& params = {});

/// The two other photonic circuit disciplines of net::FabricKind share
/// Opus's rail/OCS hardware layout but pick different switch technologies:
/// a static pre-job ring never reconfigures in-job, so the slowest,
/// densest catalog entry (Telescent-class robotic patching) suffices; a
/// rotor needs microsecond-class switching to keep slot overheads
/// tolerable (RotorNet-style OCS). `params.ocs` is always overridden with
/// the matching catalog entry — use opus_fabric directly to price a custom
/// OcsSpec.
FabricCost static_ring_fabric(int n_gpus, const CostParams& params = {});
FabricCost rotor_fabric(int n_gpus, const CostParams& params = {});

/// Fractional saving of `ours` versus `baseline` (0.705 = 70.5% cheaper).
double cost_saving(const FabricCost& ours, const FabricCost& baseline);
double power_saving(const FabricCost& ours, const FabricCost& baseline);

}  // namespace opus::costmodel
