#include "costmodel/fabric_cost.h"

#include <cmath>

#include "common/error.h"

namespace opus::costmodel {
namespace {

int ceil_div(std::int64_t a, std::int64_t b) {
  return static_cast<int>((a + b - 1) / b);
}

void add_switches(FabricCost& fc, int n, const CostParams& p) {
  fc.n_switches += n;
  fc.switch_cost += n * p.switch_cost;
  fc.switch_power_w += n * p.switch_power_w;
}

void add_transceivers_400g(FabricCost& fc, std::int64_t n,
                           const CostParams& p) {
  fc.n_transceivers += static_cast<int>(n);
  fc.transceiver_cost += static_cast<double>(n) * p.transceiver_400g_cost;
  fc.transceiver_power_w +=
      static_cast<double>(n) * p.transceiver_400g_power_w;
}

}  // namespace

FabricCost fat_tree_fabric(int n_gpus, const CostParams& p) {
  ensure(n_gpus >= 1, "fat_tree_fabric: need GPUs");
  FabricCost fc;
  fc.fabric = "Fat-tree";
  fc.n_gpus = n_gpus;
  const int half = p.switch_radix / 2;
  // 3-tier folded Clos at full bisection.
  const int tier1 = ceil_div(n_gpus, half);           // leaves
  const std::int64_t t1_up = static_cast<std::int64_t>(tier1) * half;
  const int tier2 = ceil_div(t1_up, half);            // aggregation
  const std::int64_t t2_up = static_cast<std::int64_t>(tier2) * half;
  const int tier3 = ceil_div(t2_up, p.switch_radix);  // core (all ports down)
  add_switches(fc, tier1 + tier2 + tier3, p);
  // Links: host->leaf, leaf->agg, agg->core; two optics per link.
  const std::int64_t links = n_gpus + t1_up + t2_up;
  add_transceivers_400g(fc, 2 * links, p);
  return fc;
}

FabricCost rail_optimized_fabric(int n_gpus, const CostParams& p) {
  ensure(n_gpus >= p.gpus_per_node, "rail_optimized_fabric: need >= 1 node");
  FabricCost fc;
  fc.fabric = "Rail-optimized";
  fc.n_gpus = n_gpus;
  const int rails = p.gpus_per_node;
  const int per_rail = n_gpus / rails;
  const int half = p.switch_radix / 2;
  // Leaf tier per rail (half ports down to GPUs, half up to the spine).
  const int leaves_per_rail = ceil_div(per_rail, half);
  const std::int64_t uplinks =
      static_cast<std::int64_t>(rails) * leaves_per_rail * half;
  // Spine interconnecting the rails (Fig. 1), all ports down.
  const int spines = ceil_div(uplinks, p.switch_radix);
  add_switches(fc, rails * leaves_per_rail + spines, p);
  // Links: host->rail-leaf (N), leaf->spine (uplinks).
  add_transceivers_400g(fc, 2 * (n_gpus + uplinks), p);
  return fc;
}

FabricCost opus_fabric(int n_gpus, const CostParams& p) {
  ensure(n_gpus >= p.gpus_per_node, "opus_fabric: need >= 1 node");
  FabricCost fc;
  fc.fabric = "Opus";
  fc.ocs_technology = p.ocs.technology;
  fc.n_gpus = n_gpus;
  const int rails = p.gpus_per_node;
  const int nodes = n_gpus / rails;
  // Each node exposes nic_ports OCS ports per rail.
  const std::int64_t ports_per_rail =
      static_cast<std::int64_t>(nodes) * p.nic_ports;
  const int ocs_per_rail = ceil_div(ports_per_rail, p.ocs.radix);
  fc.n_ocs = rails * ocs_per_rail;
  // Priced per used port (right-sized OCS SKUs, TopoOpt methodology);
  // power scales with connected ports likewise.
  const double used_ports = static_cast<double>(ports_per_rail) * rails;
  fc.ocs_cost = used_ports * p.ocs_cost_per_port;
  fc.ocs_power_w =
      used_ports * p.ocs_power_w_per_switch / p.ocs.radix;
  // NIC-side optics only: the OCS is passive (no OEO). One 200G bidi
  // transceiver per NIC port.
  const std::int64_t optics =
      static_cast<std::int64_t>(n_gpus) * p.nic_ports;
  fc.n_transceivers = static_cast<int>(optics);
  fc.transceiver_cost = static_cast<double>(optics) * p.transceiver_200g_cost;
  fc.transceiver_power_w =
      static_cast<double>(optics) * p.transceiver_200g_power_w;
  return fc;
}

FabricCost static_ring_fabric(int n_gpus, const CostParams& p) {
  CostParams ring = p;
  ring.ocs = ocs_by_technology("Robotic");
  FabricCost fc = opus_fabric(n_gpus, ring);
  fc.fabric = "StaticRing";
  return fc;
}

FabricCost rotor_fabric(int n_gpus, const CostParams& p) {
  CostParams rotor = p;
  rotor.ocs = ocs_by_technology("RotorNet");
  FabricCost fc = opus_fabric(n_gpus, rotor);
  fc.fabric = "Rotor";
  return fc;
}

double cost_saving(const FabricCost& ours, const FabricCost& baseline) {
  ensure(baseline.total_cost() > 0, "cost_saving: empty baseline");
  return 1.0 - ours.total_cost() / baseline.total_cost();
}

double power_saving(const FabricCost& ours, const FabricCost& baseline) {
  ensure(baseline.total_power_w() > 0, "power_saving: empty baseline");
  return 1.0 - ours.total_power_w() / baseline.total_power_w();
}

}  // namespace opus::costmodel
