#include "costmodel/ocs_catalog.h"

#include "common/error.h"

namespace opus::costmodel {

const std::vector<OcsSpec>& ocs_catalog() {
  static const std::vector<OcsSpec> catalog = {
      {"PLZT", "EpiPhotonics", 0.00001, 16},
      {"SiP", "Lightmatter", 0.007, 32},
      {"RotorNet", "InFocus", 0.01, 128},
      {"3D MEMS", "Calient", 15.0, 320},
      {"Piezo", "Polatis", 25.0, 576},
      {"Liquid crystal", "Coherent", 100.0, 512},
      {"Robotic", "Telescent", 120000.0, 1008},
  };
  return catalog;
}

const OcsSpec& ocs_by_technology(const std::string& technology) {
  for (const OcsSpec& spec : ocs_catalog()) {
    if (spec.technology == technology) return spec;
  }
  ensure(false, "unknown OCS technology: " + technology);
  return ocs_catalog().front();  // unreachable
}

std::int64_t opus_max_gpus(const OcsSpec& ocs, int gpus_per_scale_up) {
  ensure(gpus_per_scale_up >= 1, "scale-up size must be positive");
  return static_cast<std::int64_t>(gpus_per_scale_up) * ocs.radix / 2;
}

}  // namespace opus::costmodel
