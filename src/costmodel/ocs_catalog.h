// OCS technology catalog (Table 3 of the paper) and the Opus scale limit.
//
// #GPUs = (GPUs per scale-up domain) x radix / 2: with the 2-port NIC
// configuration and bidirectional transceivers, every node consumes two OCS
// ports on each rail, so one OCS serves radix/2 nodes and the fabric serves
// (radix/2) * scale-up-size GPUs.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace opus::costmodel {

struct OcsSpec {
  std::string technology;
  std::string vendor;
  double reconfig_ms = 0.0;
  int radix = 0;  ///< ports

  TimeNs reconfig_time() const { return msecs(reconfig_ms); }
};

/// All Table 3 rows, in the paper's order.
const std::vector<OcsSpec>& ocs_catalog();

/// Looks up a catalog entry by technology name (e.g. "3D MEMS").
const OcsSpec& ocs_by_technology(const std::string& technology);

/// Maximum GPUs an Opus fabric built from this OCS supports for a given
/// scale-up domain size (Table 3 columns 4/5; GB200 NVL72 = 72, H200 = 8).
std::int64_t opus_max_gpus(const OcsSpec& ocs, int gpus_per_scale_up);

/// Scale-up domain sizes used in Table 3.
inline constexpr int kGb200ScaleUp = 72;
inline constexpr int kH200ScaleUp = 8;

}  // namespace opus::costmodel
